"""Deterministic fault injection + failure recovery for the cluster tier.

See :mod:`repro.faults.plan` (what breaks, when), :mod:`repro.faults.health`
(the host's view of each device) and :mod:`repro.faults.injector` (arming a
plan onto a :class:`~repro.cluster.runtime.ClusterRuntime` and running the
recovery paths).
"""

from repro.faults.health import (
    DEGRADED,
    DOWN,
    DRAINING,
    HEALTH_STATES,
    UP,
    HealthMonitor,
)
from repro.faults.injector import DEFAULT_HEARTBEAT_NS, FaultInjector
from repro.faults.plan import (
    DEFAULT_RETRY_NS,
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    generate_fault_plan,
)

__all__ = [
    "DEFAULT_HEARTBEAT_NS",
    "DEFAULT_RETRY_NS",
    "DEGRADED",
    "DOWN",
    "DRAINING",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "HEALTH_STATES",
    "HealthMonitor",
    "UP",
    "generate_fault_plan",
]
