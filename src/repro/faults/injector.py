"""The fault injector: arms a plan onto a live cluster and runs recovery.

One :class:`FaultInjector` binds a :class:`~repro.faults.plan.FaultPlan`
to a :class:`~repro.cluster.runtime.ClusterRuntime`: every event becomes
a simulator callback, so faults fire in simulated time interleaved with
the workload deterministically.  The injector also *is* the recovery
path — it owns the cluster's :class:`~repro.faults.health.HealthMonitor`
and, on detecting a device failure:

1. marks the device DOWN and tells the :class:`LaunchScheduler` to stop
   routing to it;
2. fails every in-flight sub-launch on the device with a typed
   :class:`~repro.errors.LaunchFailed` (their completions were already
   being suppressed from the moment the device died — a dead expander
   does not answer);
3. re-replicates: replicated placements fail over reads immediately
   (any survivor holds the bytes); interleaved/blocked shards are
   re-materialized onto the next surviving device from the shared
   functional store, with the copy charged over the switch's host port
   (``recovery.recopy_bytes``).

Detection is heartbeat-quantized: a device killed at *t* is noticed at
the next heartbeat boundary after *t* (``heartbeat_ns`` granularity),
which is when all of the above runs.  Everything is observable as
``fault.*`` / ``recovery.*`` counters and, under ``REPRO_TRACE=1``, as
trace instants and recovery spans.

Arming a zero-fault plan is a strict behavioral no-op: no simulator
events are scheduled and every runtime hook short-circuits, so results
and ``runtime_ns`` are byte-identical to a run without the module.
"""

from __future__ import annotations

from repro.errors import ConfigError, LaunchFailed, PoisonError
from repro.faults.health import DEGRADED, DOWN, UP, HealthMonitor
from repro.faults.plan import FaultEvent, FaultPlan
from repro.obs import tracer as obs_tracer

#: Default heartbeat interval: how stale the host's view of a device may
#: be before a failure is noticed (detection latency ceiling).
DEFAULT_HEARTBEAT_NS = 5_000.0


class FaultInjector:
    """Binds a fault plan to a cluster runtime (see module docstring)."""

    def __init__(self, runtime, plan: FaultPlan,
                 heartbeat_ns: float = DEFAULT_HEARTBEAT_NS) -> None:
        if heartbeat_ns <= 0:
            raise ConfigError("heartbeat_ns must be positive")
        plan.validate_against(runtime.num_devices)
        pmap = getattr(runtime, "partitions", None)
        for event in plan.events:
            if event.partition is None:
                continue
            if pmap is None:
                raise ConfigError(
                    f"fault {event.kind} is scoped to partition "
                    f"{event.partition!r} but the cluster is unpartitioned "
                    f"(set REPRO_PARTITIONS or "
                    f"make_cluster_platform(partitions=...))"
                )
            pmap.share(event.partition)       # validates the name
        self.runtime = runtime
        self.plan = plan
        self.heartbeat_ns = heartbeat_ns
        self.stats = runtime.stats
        self.health = HealthMonitor(runtime.num_devices, stats=self.stats)
        self.epoch_ns = runtime.sim.now
        #: Devices that have physically died (completions lost), keyed
        #: before the host *detects* the death at a heartbeat boundary.
        self._killed = [False] * runtime.num_devices
        self._detected = [False] * runtime.num_devices
        #: Partition-scoped deaths/detections: (device, partition name).
        self._part_killed: set[tuple[int, str]] = set()
        self._part_detected: set[tuple[int, str]] = set()
        #: Per-device stall-window end (issue to the device is held).
        self._stall_until = [0.0] * runtime.num_devices
        #: Per-(device, partition) stall-window end.
        self._part_stall_until: dict[tuple[int, str], float] = {}
        #: Poisoned address ranges: (base, size, partition-or-None).
        self._poison: list[tuple[int, int, str | None]] = []
        #: In-flight sub-launches per device: id(sub_handle) ->
        #: (handle, partition) so a detected failure can fail them typed
        #: — and a partition-scoped failure only the ones in its blast
        #: radius.
        self._live: dict[int, dict[int, tuple[object, str | None]]] = {
            d: {} for d in range(runtime.num_devices)
        }
        self._armed = False

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------

    def arm(self) -> "FaultInjector":
        """Schedule every plan event on the runtime's simulator."""
        if self._armed:
            raise ConfigError("a FaultInjector arms once")
        self._armed = True
        sim = self.runtime.sim
        for event in self.plan.events:
            when = self.epoch_ns + event.at_ns
            handler = getattr(self, f"_on_{event.kind}")
            sim.schedule_at(when, (lambda e=event, h=handler: h(e)))
        return self

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    def _instant(self, name: str, when: float, **args) -> None:
        if obs_tracer.ENABLED:
            obs_tracer.tracer_of(self.runtime.sim).instant(name, when, **args)

    def _record(self, kind: str, when: float, device: int | None = None,
                **detail) -> None:
        """Land the event in the always-on flight recorder, if armed."""
        recorder = self.runtime.recorder
        if recorder is not None:
            recorder.record(kind, when, device=device, **detail)

    def _on_device_fail(self, event: FaultEvent) -> None:
        now = self.runtime.sim.now
        device = event.device
        # the host notices at the next heartbeat boundary after the death
        beats = int((now - self.epoch_ns) // self.heartbeat_ns) + 1
        detect_at = self.epoch_ns + beats * self.heartbeat_ns
        if event.partition is not None:
            # blast radius: one partition's units stop answering; the
            # rest of the device (other partitions' private L2/DRAM
            # models) never sees the fault
            self._part_killed.add((device, event.partition))
            self.stats.add("fault.partition_kills")
            self._instant("fault.partition_kill", now, pid=1 + device,
                          device=device, partition=event.partition)
            self._record("fault.partition_kill", now, device=device,
                         partition=event.partition)
            self.runtime.sim.schedule_at(
                detect_at,
                (lambda d=device, p=event.partition:
                 self._detect_partition(d, p))
            )
            return
        self._killed[device] = True
        self.stats.add("fault.device_kills")
        self._instant("fault.kill", now, pid=1 + device, device=device)
        self._record("fault.kill", now, device=device)
        self.runtime.sim.schedule_at(
            detect_at, (lambda d=device: self._detect(d))
        )

    def _on_device_stall(self, event: FaultEvent) -> None:
        now = self.runtime.sim.now
        device = event.device
        until = now + event.duration_ns
        if event.partition is not None:
            key = (device, event.partition)
            self._part_stall_until[key] = max(
                self._part_stall_until.get(key, 0.0), until)
            self.stats.add("fault.partition_stall_windows")
            self.health.mark_partition(device, event.partition, DEGRADED,
                                       now)
            self._instant("fault.partition_stall", now, pid=1 + device,
                          device=device, partition=event.partition,
                          duration_ns=event.duration_ns)
            self._record("fault.partition_stall", now, device=device,
                         partition=event.partition,
                         duration_ns=event.duration_ns)

            def recover_part(k=key, u=until) -> None:
                if self._part_stall_until.get(k, 0.0) <= u:
                    now_ns = self.runtime.sim.now
                    self.health.mark_partition(k[0], k[1], UP, now_ns)
                    self._record("recovery.partition_up", now_ns,
                                 device=k[0], partition=k[1])

            self.runtime.sim.schedule_at(until, recover_part)
            return
        self._stall_until[device] = max(self._stall_until[device], until)
        self.stats.add("fault.stall_windows")
        self.health.mark(device, DEGRADED, now)
        self._instant("fault.stall", now, pid=1 + device, device=device,
                      duration_ns=event.duration_ns)
        self._record("fault.stall", now, device=device,
                     duration_ns=event.duration_ns)

        def recover(d=device, u=until) -> None:
            if self._stall_until[d] <= u:
                now_ns = self.runtime.sim.now
                self.health.mark(d, UP, now_ns)
                self._record("recovery.device_up", now_ns, device=d)

        self.runtime.sim.schedule_at(until, recover)

    def _on_link_flap(self, event: FaultEvent) -> None:
        now = self.runtime.sim.now
        device = event.device
        until = now + event.duration_ns
        self.stats.add("fault.link_flaps")
        self.health.mark(device, DEGRADED, now)
        self.runtime.switch.start_flap(device, until, event.extra_ns)
        link = getattr(self.runtime.devices[device], "link", None)
        if link is not None:
            link.start_flap(until, event.extra_ns)
        self._instant("fault.link_flap", now, pid=1 + device, device=device,
                      duration_ns=event.duration_ns)
        self._record("fault.link_flap", now, device=device,
                     duration_ns=event.duration_ns)

        def recover(d=device) -> None:
            now_ns = self.runtime.sim.now
            self.health.mark(d, UP, now_ns)
            self._record("recovery.device_up", now_ns, device=d)

        self.runtime.sim.schedule_at(until, recover)

    def _on_poison(self, event: FaultEvent) -> None:
        now = self.runtime.sim.now
        self._poison.append((event.base, event.size, event.partition))
        self.stats.add("fault.poison_ranges")
        self._instant("fault.poison", now, base=event.base, size=event.size)
        self._record("fault.poison", now, device=event.device,
                     base=event.base, size=event.size,
                     partition=event.partition)

    # ------------------------------------------------------------------
    # detection & recovery
    # ------------------------------------------------------------------

    def _detect(self, device: int) -> None:
        if self._detected[device]:
            return
        self._detected[device] = True
        now = self.runtime.sim.now
        self.stats.add("fault.detections")
        self.health.mark(device, DOWN, now)
        self.runtime.scheduler.set_routable(device, False)
        self._instant("fault.detect", now, pid=1 + device, device=device)
        self._record("fault.detect", now, device=device)
        # fail every in-flight sub-launch stranded on the dead device
        stranded = list(self._live[device].values())
        self._live[device].clear()
        for handle, _part in stranded:
            self.runtime.scheduler.note_complete(device)
            self.stats.add("recovery.failed_launches")
            handle._fail(now, LaunchFailed(
                f"device {device} failed with the launch in flight",
                device=device, reason="device_failure",
            ))
        self._recover_shards(device, now)
        if self.runtime.incidents is not None:
            self.runtime.incidents.on_fault_detected(device, now)

    def _detect_partition(self, device: int, partition: str) -> None:
        """Heartbeat detection of a partition-scoped failure.

        The device stays routable — the blast radius is one partition:
        only launches bound to it are failed, and only allocations
        pinned to it move.  Surviving partitions' private timing models
        were never touched, so their results are byte-identical to a
        fault-free run by construction.
        """
        if (device, partition) in self._part_detected:
            return
        self._part_detected.add((device, partition))
        now = self.runtime.sim.now
        self.stats.add("fault.detections")
        self.stats.add("fault.partition_detections")
        self.health.mark_partition(device, partition, DOWN, now)
        self._instant("fault.partition_detect", now, pid=1 + device,
                      device=device, partition=partition)
        self._record("fault.partition_detect", now, device=device,
                     partition=partition)
        # fail only the in-flight sub-launches inside the blast radius
        stranded = [(key, handle)
                    for key, (handle, part) in self._live[device].items()
                    if part == partition]
        for key, handle in stranded:
            del self._live[device][key]
            self.runtime.scheduler.note_complete(device)
            self.stats.add("recovery.failed_launches")
            handle._fail(now, LaunchFailed(
                f"partition {partition!r} on device {device} failed "
                f"with the launch in flight",
                device=device, reason="partition_failure",
            ))
        # fail pinned allocations over to spare-partition capacity.  The
        # pin is uniform across devices, so the move is cluster-wide:
        # future launches must avoid the dead partition everywhere.
        spare = self.runtime.partitions.spare_for(partition)
        if spare is not None:
            for shard in self.runtime.allocator.maps:
                if (shard.active_partition == partition
                        and shard.move_partition(spare.name)):
                    self.stats.add("recovery.partition_failovers")
                    self._record("recovery.partition_remap", now,
                                 device=device, partition=partition,
                                 survivor=spare.name)
        if self.runtime.incidents is not None:
            self.runtime.incidents.on_fault_detected(
                device, now, partition=partition)

    def _recover_shards(self, device: int, now: float) -> None:
        """Fail over / re-materialize every allocation the device owned."""
        survivor = self._next_survivor(device)
        tracer = obs_tracer.tracer_of(self.runtime.sim) \
            if obs_tracer.ENABLED else None
        for shard in self.runtime.allocator.maps:
            if shard.placement == "replicated":
                # any survivor already holds the bytes: immediate failover
                self.stats.add("recovery.failovers")
                self._record("recovery.failover", now, device=device,
                             survivor=survivor)
                continue
            moved = shard.fail_over(device, survivor)
            if not moved:
                continue
            # re-materialize from the shared functional store: the copy
            # crosses the switch into the survivor's port
            done = self.runtime.switch.host_to_device(now, survivor, moved)
            self.stats.add("recovery.remapped_shards")
            self.stats.add("recovery.recopy_bytes", moved)
            self._record("recovery.remap", now, device=device,
                         survivor=survivor, bytes=moved, done_ns=done)
            if tracer is not None:
                tracer.record("recovery.recopy", now, done,
                              pid=1 + survivor, device=survivor,
                              bytes=moved, failed_device=device)

    def _next_survivor(self, failed: int) -> int:
        n = self.runtime.num_devices
        for step in range(1, n):
            candidate = (failed + step) % n
            if self.health.is_routable(candidate):
                return candidate
        raise ConfigError("no surviving device to fail over to")

    # ------------------------------------------------------------------
    # runtime hooks (every one a cheap no-op under a zero-fault plan)
    # ------------------------------------------------------------------

    def note_sub_issued(self, device: int, handle, sub_handle,
                        partition: str | None = None) -> None:
        """Track an in-flight sub-launch so a kill can fail it typed —
        and a partition-scoped kill only the ones in its blast radius."""
        self._live[device][id(sub_handle)] = (handle, partition)

    def note_sub_completion(self, device: int, sub_handle) -> bool:
        """Returns True when the completion is *lost* (the device — or
        the partition the sub-launch ran in — died before the host could
        observe it); the handle then stays pending until :meth:`_detect`
        / :meth:`_detect_partition` fails it."""
        if self._killed[device]:
            self.stats.add("fault.lost_completions")
            return True
        entry = self._live[device].get(id(sub_handle))
        if (entry is not None and entry[1] is not None
                and (device, entry[1]) in self._part_killed):
            self.stats.add("fault.lost_completions")
            return True
        self._live[device].pop(id(sub_handle), None)
        return False

    def delay_issue(self, device: int, ready_ns: float,
                    partition: str | None = None) -> float:
        """Hold sub-launch issue while the device — or the target
        partition — is in a stall window."""
        until = self._stall_until[device]
        if partition is not None:
            until = max(until,
                        self._part_stall_until.get((device, partition), 0.0))
        if ready_ns < until:
            self.stats.add("fault.stall_delays")
            return until
        return ready_ns

    def poison_hit(self, lo: int, hi: int,
                   partition: str | None = None) -> tuple[int, int] | None:
        """First poisoned range intersecting [lo, hi), or None.

        ``partition`` is the partition the launch would run in;
        partition-scoped poison only hits launches in that partition,
        unscoped poison hits everything.
        """
        for base, size, scope in self._poison:
            if scope is not None and scope != partition:
                continue
            if lo < base + size and base < hi:
                return (base, size)
        return None

    def clear_poison(self, base: int | None = None) -> None:
        """Scrub poisoned ranges (all of them when ``base`` is None)."""
        if base is None:
            self._poison.clear()
        else:
            self._poison = [e for e in self._poison if e[0] != base]

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Deterministic summary for manifests / reports."""
        snap = {
            "health": list(self.health.states),
            "events": len(self.plan.events),
            "counters": {
                key: value for key, value in sorted(
                    self.stats.counters("fault.").items()
                )
            },
        }
        if self.health.partition_states:
            snap["partition_health"] = {
                f"dev{d}.{name}": state
                for (d, name), state in sorted(
                    self.health.partition_states.items())
            }
        return snap


def make_poison_failure(base: int, size: int, pool_base: int) -> PoisonError:
    """The typed fault a launch over a poisoned range completes with."""
    return PoisonError(base, size, addr=max(base, pool_base))
