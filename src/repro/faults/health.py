"""Device health states and the monitor that tracks them.

Health is the *host's* view of each expander, driven by heartbeats and
launch outcomes rather than by the fault plan directly: a killed device
is not DOWN the instant the fault fires — it is DOWN when the host
*notices* (the next missed heartbeat, or a launch watchdog), which is
when recovery actually starts in a real fleet.

States:

``UP``        responding normally; the scheduler routes to it.
``DEGRADED``  responding but impaired (stall window, flapping link);
              still routable — work placed there just runs slower.
``DRAINING``  healthy but being quiesced (planned maintenance or
              autoscaler scale-down): no *new* work is routed, in-flight
              work finishes.
``DOWN``      failed and detected; never routed to, shards failed over.

Transitions are recorded as ``fault.health_transitions`` counter bumps
and, when tracing is enabled, ``fault.health`` instants on the device's
trace lane.
"""

from __future__ import annotations

from repro.sim.stats import StatsRegistry

UP = "up"
DEGRADED = "degraded"
DRAINING = "draining"
DOWN = "down"

#: All health states (doc / validation order: healthiest first).
HEALTH_STATES = (UP, DEGRADED, DRAINING, DOWN)


class HealthMonitor:
    """Per-device health state machine with counter-backed transitions."""

    def __init__(self, num_devices: int,
                 stats: StatsRegistry | None = None) -> None:
        self.states = [UP] * num_devices
        self.stats = stats
        #: (when_ns, device, old, new) transition log for reports/tests.
        self.transitions: list[tuple[float, int, str, str]] = []
        #: Per-(device, partition) states; absent keys are UP.  Populated
        #: only by partition-scoped faults, so unpartitioned runs never
        #: touch it.
        self.partition_states: dict[tuple[int, str], str] = {}
        #: (when_ns, device, partition, old, new) partition transitions.
        self.partition_transitions: list[
            tuple[float, int, str, str, str]] = []

    def state(self, device: int) -> str:
        return self.states[device]

    def partition_state(self, device: int, partition: str) -> str:
        """Health of one hardware partition on ``device``.

        A partition is only as healthy as its device: a DOWN device
        reports every partition DOWN.
        """
        if self.states[device] == DOWN:
            return DOWN
        return self.partition_states.get((device, partition), UP)

    def is_partition_routable(self, device: int, partition: str) -> bool:
        return (self.is_routable(device)
                and self.partition_state(device, partition) in (UP, DEGRADED))

    def mark_partition(self, device: int, partition: str, new_state: str,
                       when_ns: float) -> bool:
        """Transition one partition; same DOWN-is-terminal rule as devices."""
        old = self.partition_states.get((device, partition), UP)
        if old == new_state or old == DOWN:
            return False
        self.partition_states[(device, partition)] = new_state
        self.partition_transitions.append(
            (when_ns, device, partition, old, new_state))
        if self.stats is not None:
            self.stats.add("fault.partition_transitions")
            self.stats.add(f"fault.partition_to_{new_state}")
        return True

    def is_routable(self, device: int) -> bool:
        return self.states[device] in (UP, DEGRADED)

    @property
    def routable_devices(self) -> list[int]:
        return [d for d, s in enumerate(self.states) if s in (UP, DEGRADED)]

    @property
    def down_devices(self) -> list[int]:
        return [d for d, s in enumerate(self.states) if s == DOWN]

    def mark(self, device: int, new_state: str, when_ns: float) -> bool:
        """Transition ``device`` to ``new_state``; returns True on change.

        DOWN is terminal: a dead device never recovers within a run (a
        replacement would be a *new* device in a longer-horizon model).
        """
        old = self.states[device]
        if old == new_state or old == DOWN:
            return False
        self.states[device] = new_state
        self.transitions.append((when_ns, device, old, new_state))
        if self.stats is not None:
            self.stats.add("fault.health_transitions")
            self.stats.add(f"fault.health_to_{new_state}")
        return True

    def render(self) -> str:
        parts = [f"dev{d}:{s}" for d, s in enumerate(self.states)]
        parts.extend(
            f"dev{d}.{name}:{s}"
            for (d, name), s in sorted(self.partition_states.items())
        )
        return " ".join(parts)
