"""SpMV workload (§IV-B): y = A·x over a CSR sparse matrix.

The generator produces a power-law row-degree distribution (the evaluated
matrices are graph-like), which is what creates inter-/intra-warp
divergence on the GPU and load imbalance that M2NDP's fine-grained
µthread spawning absorbs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.host.api import pack_args
from repro.host.gpu import GPUKernelSpec, WarpProfile
from repro.kernels.spmv import SPMV_CSR
from repro.workloads.base import NDPRunResult, Platform, rng


@dataclass
class CSRMatrix:
    row_ptr: np.ndarray      # i64, n_rows + 1
    col_idx: np.ndarray      # i32
    values: np.ndarray       # f32
    n_rows: int
    n_cols: int

    @property
    def nnz(self) -> int:
        return len(self.col_idx)

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.row_ptr)


@dataclass
class SPMVData:
    matrix: CSRMatrix
    x: np.ndarray
    reference: np.ndarray


def generate_csr(n_rows: int, avg_degree: int, salt: int = 0,
                 n_cols: int | None = None) -> CSRMatrix:
    """Power-law (lognormal) row degrees, uniform column targets."""
    gen = rng(salt + n_rows)
    n_cols = n_cols if n_cols is not None else n_rows
    raw = gen.lognormal(mean=np.log(max(avg_degree, 1)), sigma=1.0, size=n_rows)
    degrees = np.clip(raw.astype(np.int64), 0, n_cols)
    row_ptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(degrees, out=row_ptr[1:])
    nnz = int(row_ptr[-1])
    col_idx = gen.integers(0, n_cols, nnz, dtype=np.int32)
    values = gen.normal(0.0, 1.0, nnz).astype(np.float32)
    return CSRMatrix(row_ptr=row_ptr, col_idx=col_idx, values=values,
                     n_rows=n_rows, n_cols=n_cols)


def generate(n_rows: int, avg_degree: int, salt: int = 0) -> SPMVData:
    matrix = generate_csr(n_rows, avg_degree, salt)
    gen = rng(salt + 1)
    x = gen.normal(0.0, 1.0, matrix.n_cols).astype(np.float32)
    reference = _reference_spmv(matrix, x)
    return SPMVData(matrix=matrix, x=x, reference=reference)


def _reference_spmv(matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Float64-accumulated reference (matches the kernel's fmadd.d chain)."""
    y = np.zeros(matrix.n_rows, dtype=np.float64)
    for row in range(matrix.n_rows):
        start, end = matrix.row_ptr[row], matrix.row_ptr[row + 1]
        acc = 0.0
        for k in range(start, end):
            acc += float(matrix.values[k]) * float(x[matrix.col_idx[k]])
        y[row] = acc
    return y.astype(np.float32)


def run_ndp(platform: Platform, data: SPMVData) -> NDPRunResult:
    runtime = platform.runtime
    m = data.matrix
    rp_addr = runtime.alloc_array(m.row_ptr)
    ci_addr = runtime.alloc_array(m.col_idx)
    va_addr = runtime.alloc_array(m.values)
    x_addr = runtime.alloc_array(data.x)
    y_addr = runtime.alloc(m.n_rows * 4)
    start_bytes = platform.stats.get("cxl_dram.bytes")

    instance = runtime.run_kernel(
        SPMV_CSR,
        rp_addr,
        rp_addr + m.n_rows * 8,     # pool over row pointers (4 rows / 32 B)
        args=pack_args(ci_addr, va_addr, x_addr, y_addr, m.n_rows),
        name="spmv",
    )
    produced = runtime.read_array(y_addr, np.float32, m.n_rows)
    correct = bool(np.allclose(produced, data.reference, rtol=1e-3, atol=1e-4))

    return NDPRunResult(
        name="spmv",
        runtime_ns=instance.runtime_ns,
        correct=correct,
        instructions=instance.instructions,
        uthreads=instance.uthreads_done,
        dram_bytes=platform.stats.get("cxl_dram.bytes") - start_bytes,
        extras={"nnz": m.nnz,
                "global_accesses": platform.stats.get("ndp.global_accesses")},
    )


def gpu_spec(data: SPMVData, tb_size: int = 128) -> GPUKernelSpec:
    """CSR-scalar SpMV: one thread per row; warp time tracks its longest
    row (intra-warp divergence), computed from the real row lengths."""
    m = data.matrix
    lengths = m.row_lengths()
    total_warps = (m.n_rows + 31) // 32

    def profile(warp: int) -> WarpProfile:
        rows = lengths[warp * 32:(warp + 1) * 32]
        if len(rows) == 0:
            return WarpProfile(instructions=4, mem_ops=[])
        longest = int(rows.max())
        mean = float(rows.mean())
        # SIMT lockstep: every lane walks `longest` iterations
        instructions = 8 + longest * 10
        # each iteration: col idx + value (coalesced-ish) + x gather
        mem_ops = [(8, False)] * longest + [(1, True)]
        active = mean / longest if longest else 1.0
        return WarpProfile(instructions=instructions, mem_ops=mem_ops,
                           active_lane_ratio=active, mlp=2)

    return GPUKernelSpec(
        name="spmv.gpu",
        total_warps=total_warps,
        warps_per_tb=tb_size // 32,
        warp_profile=profile,
        regs_per_thread=24,
    )
