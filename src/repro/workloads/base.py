"""Workload plumbing shared by all eight evaluation workloads (Table V).

Provides the platform bundle (simulator + device + runtime), deterministic
RNG seeding, and the scale presets: tests run ``tiny``, benchmarks default
to ``small``, and ``paper`` matches Table V input sizes (hours of pure-
Python simulation — available, not default; EXPERIMENTS.md records the
scale used for every number).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.config import SystemConfig, default_system
from repro.exec.base import validate_backend_name
from repro.host.api import M2NDPRuntime
from repro.ndp.device import M2NDPDevice
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry

SEED = 0xC0FFEE


@dataclass
class Platform:
    """One simulated host + CXL-M2NDP device pair."""

    sim: Simulator
    device: M2NDPDevice
    runtime: M2NDPRuntime
    system: SystemConfig

    @property
    def stats(self) -> StatsRegistry:
        return self.device.stats


def make_platform(system: SystemConfig | None = None,
                  spawn_granularity: int = 1,
                  dirty_fraction: float = 0.0,
                  queue_capacity: int = 4096,
                  asid: int = 0x7,
                  backend: str | None = None) -> Platform:
    """Build a fresh simulator/device/runtime bundle.

    ``backend`` selects the µthread execution backend ("interpreter" or
    "batched", see :mod:`repro.exec`).  ``None`` uses the
    ``REPRO_EXEC_BACKEND`` environment variable if set, else the system
    config's default.  An explicit ``backend`` argument always wins: some
    experiments pin the interpreter for correctness (Fig 6 occupancy,
    Fig 12a spawn granularity) and must not be overridden from the
    environment.  To flip the experiment drivers' default, use
    ``REPRO_EXPERIMENT_BACKEND`` (see ``repro.experiments.common``).
    """
    system = system if system is not None else default_system()
    if backend is None:
        backend = os.environ.get("REPRO_EXEC_BACKEND")
        if backend is not None:
            validate_backend_name(
                backend, source="REPRO_EXEC_BACKEND environment variable"
            )
    sim = Simulator()
    device = M2NDPDevice(
        sim,
        system,
        spawn_granularity=spawn_granularity,
        dirty_fraction=dirty_fraction,
        queue_capacity=queue_capacity,
        backend=backend,
    )
    runtime = M2NDPRuntime(device, asid=asid)
    return Platform(sim=sim, device=device, runtime=runtime, system=system)


def rng(salt: int = 0) -> np.random.Generator:
    """Deterministic per-purpose random generator."""
    return np.random.default_rng(SEED + salt)


@dataclass(frozen=True)
class ScalePreset:
    """Input-size knobs; each workload reads the fields it cares about."""

    name: str
    elements: int            # flat array workloads (HISTO, reductions)
    rows: int                # OLAP table rows
    nodes: int               # graph workloads
    avg_degree: int
    kv_items: int
    kv_requests: int
    dlrm_rows: int
    dlrm_batch_cap: int
    llm_hidden: int
    llm_layers: int


SCALES: dict[str, ScalePreset] = {
    "tiny": ScalePreset(
        name="tiny", elements=1 << 12, rows=1 << 12, nodes=256, avg_degree=8,
        kv_items=512, kv_requests=200, dlrm_rows=1 << 10, dlrm_batch_cap=4,
        llm_hidden=64, llm_layers=2,
    ),
    "small": ScalePreset(
        name="small", elements=1 << 18, rows=1 << 16, nodes=4096,
        avg_degree=8, kv_items=4096, kv_requests=2000, dlrm_rows=1 << 13,
        dlrm_batch_cap=32, llm_hidden=128, llm_layers=2,
    ),
    "paper": ScalePreset(
        name="paper", elements=16 << 20, rows=6 << 20, nodes=299_067,
        avg_degree=7, kv_items=10 << 20, kv_requests=10_000,
        dlrm_rows=1 << 20, dlrm_batch_cap=256, llm_hidden=2560, llm_layers=32,
    ),
}


def scale(name: str = "small") -> ScalePreset:
    if name not in SCALES:
        raise KeyError(f"unknown scale {name!r}; choose from {sorted(SCALES)}")
    return SCALES[name]


@dataclass
class NDPRunResult:
    """Outcome of one NDP workload run."""

    name: str
    runtime_ns: float
    correct: bool
    instance_count: int = 1
    instructions: int = 0
    uthreads: int = 0
    dram_bytes: float = 0.0
    extras: dict = field(default_factory=dict)

    @property
    def dram_bandwidth(self) -> float:
        return self.dram_bytes / self.runtime_ns if self.runtime_ns else 0.0
