"""LLM generation-phase workload (§IV-B): OPT-2.7B / OPT-30B token
generation with weights in CXL memory.

With batch size 1, generating one token is a chain of GEMVs over every
weight matrix (QKV, attention projection, two FFN layers) plus the KV
cache — memory-bound streaming of the whole model per token.  We simulate
a *scaled-down* transformer layer faithfully (real GEMV kernel, real data)
and extrapolate to the full model size by the weight-byte ratio; since
numerator and denominator scale identically for NDP and baselines, the
paper's speedups are preserved (see DESIGN.md substitutions).

Model shapes from [143]:
  OPT-2.7B: 32 layers, hidden 2560, ffn 4x
  OPT-30B:  48 layers, hidden 7168, ffn 4x
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.host.api import pack_args
from repro.host.gpu import GPUKernelSpec, WarpProfile
from repro.kernels.gemv import GEMV_F32
from repro.workloads.base import NDPRunResult, Platform, rng


@dataclass(frozen=True)
class OPTModel:
    name: str
    layers: int
    hidden: int
    ffn_mult: int = 4
    context: int = 1024

    @property
    def weight_bytes_per_layer(self) -> int:
        h = self.hidden
        # QKV (3 h*h) + attention out (h*h) + FFN up (4h*h) + FFN down (h*4h)
        return (3 * h * h + h * h + 2 * self.ffn_mult * h * h) * 4

    @property
    def total_weight_bytes(self) -> int:
        return self.layers * self.weight_bytes_per_layer

    @property
    def kv_cache_bytes(self) -> int:
        return 2 * self.layers * self.context * self.hidden * 4


OPT_2_7B = OPTModel(name="OPT-2.7B", layers=32, hidden=2560)
OPT_30B = OPTModel(name="OPT-30B", layers=48, hidden=7168)


@dataclass
class GEMVData:
    """One scaled GEMV standing in for a transformer layer's matrices."""

    weights: np.ndarray      # [n_rows, dim] f32
    x: np.ndarray            # [dim] f32
    reference: np.ndarray    # [n_rows] f32
    model: OPTModel
    sim_bytes: int

    @property
    def scale_factor(self) -> float:
        """Extrapolation ratio: full-model bytes / simulated bytes."""
        return (self.model.total_weight_bytes + self.model.kv_cache_bytes) / self.sim_bytes


def generate(model: OPTModel, sim_hidden: int, sim_layers: int,
             salt: int = 0) -> GEMVData:
    """Scaled-down weights: ``sim_layers`` layers of hidden ``sim_hidden``
    flattened into one GEMV with the same byte count."""
    gen = rng(salt + model.layers)
    per_layer_rows = 3 * sim_hidden + sim_hidden + 2 * model.ffn_mult * sim_hidden
    n_rows = per_layer_rows * sim_layers
    weights = gen.normal(0.0, 0.05, (n_rows, sim_hidden)).astype(np.float32)
    x = gen.normal(0.0, 1.0, sim_hidden).astype(np.float32)
    reference = (weights.astype(np.float64) @ x.astype(np.float64)).astype(np.float32)
    return GEMVData(weights=weights, x=x, reference=reference, model=model,
                    sim_bytes=weights.nbytes)


def run_ndp(platform: Platform, data: GEMVData) -> NDPRunResult:
    runtime = platform.runtime
    n_rows, dim = data.weights.shape
    w_addr = runtime.alloc_array(data.weights)
    x_addr = runtime.alloc_array(data.x)
    out_addr = runtime.alloc(n_rows * 4)
    start_bytes = platform.stats.get("cxl_dram.bytes")

    instance = runtime.run_kernel(
        GEMV_F32,
        out_addr,
        out_addr + n_rows * 4,        # pool = output vector, one row each
        args=pack_args(w_addr, x_addr, dim),
        stride=4,
        name=f"{data.model.name}.gemv",
    )
    produced = runtime.read_array(out_addr, np.float32, n_rows)
    correct = bool(np.allclose(produced, data.reference, rtol=2e-2, atol=2e-2))

    sim_ns = instance.runtime_ns
    return NDPRunResult(
        name=f"opt.{data.model.name}",
        runtime_ns=sim_ns,
        correct=correct,
        instructions=instance.instructions,
        uthreads=instance.uthreads_done,
        dram_bytes=platform.stats.get("cxl_dram.bytes") - start_bytes,
        extras={
            "token_ns_extrapolated": sim_ns * data.scale_factor,
            "scale_factor": data.scale_factor,
            "global_accesses": platform.stats.get("ndp.global_accesses"),
        },
    )


def gpu_spec(data: GEMVData, tb_size: int = 128) -> GPUKernelSpec:
    """Row-per-thread GEMV: a warp owns 32 weight rows, so it must stream
    32 * dim * 4 bytes — one 128 B coalesced load per dim step."""
    n_rows, dim = data.weights.shape
    total_warps = (n_rows + 31) // 32
    loads_per_warp = (32 * dim * 4) // 128    # whole-warp row traffic

    def profile(_warp: int) -> WarpProfile:
        return WarpProfile(
            instructions=8 + loads_per_warp * 5,
            mem_ops=[(4, False)] * loads_per_warp + [(1, True)],
            mlp=8,
        )

    return GPUKernelSpec(
        name=f"{data.model.name}.gpu",
        total_warps=total_warps,
        warps_per_tb=tb_size // 32,
        warp_profile=profile,
        regs_per_thread=32,
    )


def all_reduce_bytes(model: OPTModel, num_devices: int) -> int:
    """Per-token activation exchange for tensor-parallel scaling (§III-I):
    each layer all-reduces two hidden-sized vectors across devices."""
    if num_devices <= 1:
        return 0
    return 2 * model.layers * model.hidden * 4 * (num_devices - 1)
