"""KVStore workload (§IV-B): simplified Redis over a CXL-resident hash
table, driven by YCSB-like traces.

The host computes the key hash (compute-bound); the bucket walk, key
compare and value copy are offloaded as a fine-grained one-µthread NDP
kernel.  Baseline: the host walks the chain itself over CXL.mem, paying
full load-to-use latency per dependent access.

Workload mixes follow YCSB: KVS_A = 50 % GET / 50 % SET,
KVS_B = 95 % GET / 5 % SET, zipfian key popularity [37].

Hash-table node layout (128 B): key 24 B @0, value 64 B @32, next @96.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.host.api import M2NDPRuntime, pack_args
from repro.host.cpu import CoreRequestPool, HostCPUModel, MemoryTarget
from repro.host.offload import OffloadPath
from repro.kernels.kvstore import KVS_GET, KVS_SET
from repro.sim.stats import Distribution
from repro.workloads.base import Platform, rng

NODE_BYTES = 128
KEY_WORDS = 3
VALUE_BYTES = 64

#: Host-side hash + request handling compute per request (SHA-like hash of
#: a 24 B key plus dispatch).
HOST_HASH_NS = 150.0


def hash_key(k0: int, k1: int, k2: int, buckets: int) -> int:
    """The host-side key hash (also used by cluster serving drivers)."""
    h = (k0 * 0x9E3779B97F4A7C15 + k1 * 0xC2B2AE3D27D4EB4F + k2) & (
        0xFFFFFFFFFFFFFFFF
    )
    h ^= h >> 29
    return h % buckets


_hash_key = hash_key


@dataclass
class KVRequest:
    arrival_ns: float
    is_get: bool
    key: tuple[int, int, int]
    chain_position: int          # depth of the key in its bucket (0-based)
    value_seed: int = 0


@dataclass
class KVStoreData:
    items: int
    buckets: int
    keys: np.ndarray             # [items, 3] u64
    bucket_of: np.ndarray        # [items]
    chain_position: np.ndarray   # [items] depth within bucket
    requests: list[KVRequest]
    mix_name: str


def generate(items: int, requests: int, get_fraction: float,
             mix_name: str, salt: int = 0,
             interarrival_ns: float = 500.0) -> KVStoreData:
    """Build the table population and a zipfian open-loop request trace."""
    gen = rng(salt + items)
    buckets = max(64, items // 2)
    keys = gen.integers(1, 1 << 63, (items, KEY_WORDS), dtype=np.uint64)
    bucket_of = np.array(
        [_hash_key(int(k[0]), int(k[1]), int(k[2]), buckets) for k in keys],
        dtype=np.int64,
    )
    # chain position: i-th key hashed to a bucket sits at depth i
    chain_position = np.zeros(items, dtype=np.int64)
    depth_seen: dict[int, int] = {}
    for i, b in enumerate(bucket_of):
        chain_position[i] = depth_seen.get(int(b), 0)
        depth_seen[int(b)] = chain_position[i] + 1

    zipf = gen.zipf(1.2, size=requests)
    target_items = ((zipf - 1) % items).astype(np.int64)
    is_get = gen.random(requests) < get_fraction
    arrivals = np.cumsum(gen.exponential(interarrival_ns, requests))

    reqs = [
        KVRequest(
            arrival_ns=float(arrivals[i]),
            is_get=bool(is_get[i]),
            key=tuple(int(w) for w in keys[target_items[i]]),
            chain_position=int(chain_position[target_items[i]]),
            value_seed=int(target_items[i]),
        )
        for i in range(requests)
    ]
    return KVStoreData(items=items, buckets=buckets, keys=keys,
                       bucket_of=bucket_of, chain_position=chain_position,
                       requests=reqs, mix_name=mix_name)


def kvs_a(items: int, requests: int, salt: int = 0,
          interarrival_ns: float = 500.0) -> KVStoreData:
    return generate(items, requests, 0.5, "KVS_A", salt, interarrival_ns)


def kvs_b(items: int, requests: int, salt: int = 0,
          interarrival_ns: float = 500.0) -> KVStoreData:
    return generate(items, requests, 0.95, "KVS_B", salt, interarrival_ns)


# ---------------------------------------------------------------------------
# table setup in HDM
# ---------------------------------------------------------------------------

@dataclass
class KVTable:
    buckets_addr: int
    nodes_addr: int
    spare_addr: int          # preallocated nodes for SET inserts
    spare_used: int = 0
    node_of_item: np.ndarray | None = None


def setup_table(runtime: M2NDPRuntime, data: KVStoreData,
                spare_nodes: int = 1024,
                placement: str | None = None,
                partition: str | None = None) -> KVTable:
    """Materialize buckets and chained nodes in device memory.

    ``placement`` (cluster runtimes only) shards or replicates the table
    across the expanders; the single-device runtime ignores it.
    ``partition`` (partitioned clusters only) pins every launch against
    the table to one hardware partition.
    """
    device = runtime.device
    kwargs = {} if placement is None else {"placement": placement}
    if partition is not None:
        kwargs["partition"] = partition
    buckets_addr = runtime.alloc(data.buckets * 8, **kwargs)
    nodes_addr = runtime.alloc(data.items * NODE_BYTES, align=128, **kwargs)
    spare_addr = runtime.alloc(spare_nodes * NODE_BYTES, align=128, **kwargs)

    heads = np.zeros(data.buckets, dtype=np.uint64)
    node_of_item = np.zeros(data.items, dtype=np.uint64)
    blob = bytearray(data.items * NODE_BYTES)
    value = bytearray(VALUE_BYTES)
    for i in range(data.items):
        addr = nodes_addr + i * NODE_BYTES
        node_of_item[i] = addr
        base = i * NODE_BYTES
        for w in range(KEY_WORDS):
            blob[base + 8 * w:base + 8 * w + 8] = int(data.keys[i, w]).to_bytes(8, "little")
        value[0:8] = (i & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
        blob[base + 32:base + 32 + VALUE_BYTES] = value
        bucket = int(data.bucket_of[i])
        blob[base + 96:base + 104] = int(heads[bucket]).to_bytes(8, "little")
        heads[bucket] = addr
    device.physical.write_bytes(nodes_addr, bytes(blob))
    device.physical.store_array(buckets_addr, heads)
    return KVTable(buckets_addr=buckets_addr, nodes_addr=nodes_addr,
                   spare_addr=spare_addr, node_of_item=node_of_item)


# ---------------------------------------------------------------------------
# NDP serving path
# ---------------------------------------------------------------------------

@dataclass
class KVSRunResult:
    mix_name: str
    latencies: Distribution
    served: int
    correct: bool

    @property
    def p95_ns(self) -> float:
        return self.latencies.p95

    @property
    def mean_ns(self) -> float:
        return self.latencies.mean

    def throughput_rps(self, elapsed_ns: float) -> float:
        return self.served / (elapsed_ns * 1e-9) if elapsed_ns > 0 else 0.0


def run_ndp(platform: Platform, data: KVStoreData, path: OffloadPath,
            host_cores: int = 16) -> KVSRunResult:
    """Serve the trace through NDP kernels launched via ``path``."""
    runtime = platform.runtime
    sim = platform.sim
    table = setup_table(runtime, data)
    get_kid = runtime.register_kernel(KVS_GET, name="kvs_get")
    set_kid = runtime.register_kernel(KVS_SET, name="kvs_set")

    results_addr = runtime.alloc(len(data.requests) * 128, align=128)
    pool = CoreRequestPool(sim, host_cores)
    latencies = Distribution()
    get_checks: list[tuple[int, int]] = []   # (result slot, expected seed)
    mutated = {
        req.key for req in data.requests if not req.is_get
    }
    # kernel registration stepped the simulator; the trace starts after it
    epoch = sim.now

    def make_launch(req: KVRequest, slot_addr: int, arrival: float):
        def after_hash(hash_done_ns: float) -> None:
            bucket_ptr = table.buckets_addr + 8 * _hash_key(
                *req.key, data.buckets
            )
            if req.is_get:
                args = pack_args(bucket_ptr, *req.key)
                kid = get_kid
            else:
                node = table.spare_addr + table.spare_used * NODE_BYTES
                table.spare_used += 1
                _prewrite_node(runtime, node, req)
                args = pack_args(bucket_ptr, *req.key, node)
                kid = set_kid

            def done(handle) -> None:
                latencies.add(handle.complete_ns - arrival)

            path.launch(runtime, kid, slot_addr, slot_addr + 32, args=args,
                        at_ns=hash_done_ns, on_complete=done)

        return after_hash

    for i, req in enumerate(data.requests):
        slot = results_addr + i * 128
        if req.is_get and req.key not in mutated:
            get_checks.append((slot, req.value_seed))
        arrival = epoch + req.arrival_ns
        callback = make_launch(req, slot, arrival)
        sim.schedule_at(
            arrival,
            (lambda a=arrival, cb=callback: pool.submit(a, HOST_HASH_NS, cb)),
        )

    sim.run()

    correct = True
    for slot, seed in get_checks:
        status = runtime.device.physical.read_u64(slot + 64)
        value0 = runtime.device.physical.read_u64(slot)
        if status != 1 or value0 != seed:
            correct = False
            break

    return KVSRunResult(mix_name=data.mix_name, latencies=latencies,
                        served=latencies.count, correct=correct)


def _prewrite_node(runtime: M2NDPRuntime, node_addr: int,
                   req: KVRequest) -> None:
    """Host prepares a SET's node (key + value) before offloading."""
    device = runtime.device
    for w, word in enumerate(req.key):
        device.physical.write_u64(node_addr + 8 * w, word)
    device.physical.write_u64(node_addr + 32, req.value_seed)
    device.physical.write_u64(node_addr + 96, 0)


# ---------------------------------------------------------------------------
# host baseline (no NDP): chain walk over CXL.mem
# ---------------------------------------------------------------------------

def run_baseline(platform: Platform, data: KVStoreData,
                 ltu_ns: float | None = None,
                 host_cores: int = 64) -> KVSRunResult:
    """Host serves requests itself; each chain hop is a dependent CXL read."""
    sim = platform.sim
    ltu = ltu_ns if ltu_ns is not None else platform.system.cxl.load_to_use_ns
    cpu = HostCPUModel()
    memory = MemoryTarget("cxl", ltu, 64.0)
    pool = CoreRequestPool(sim, host_cores)
    latencies = Distribution()

    for req in data.requests:
        # bucket head + one node header per chain hop + the value line
        depth = 1 + req.chain_position + 1 + 1
        service = HOST_HASH_NS + cpu.pointer_chase_ns(depth, memory)

        def done(when_ns: float, r=req) -> None:
            latencies.add(when_ns - r.arrival_ns)

        sim.schedule_at(
            req.arrival_ns,
            (lambda r=req, s=service, cb=done: pool.submit(r.arrival_ns, s, cb)),
        )

    sim.run()
    return KVSRunResult(mix_name=data.mix_name, latencies=latencies,
                        served=latencies.count, correct=True)
