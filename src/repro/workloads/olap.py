"""In-memory OLAP workload: TPC-H Q6/Q14 and SSB Q1.1-Q1.3 filters.

The paper offloads the memory-intensive *Evaluate* phase of filtering —
sweep columns, produce a boolean mask — to NDP, while the host keeps the
cheap Filter/Etc phases (§IV-B).  Columns use the Arrow-style columnar
layout; the synthetic generators preserve the only distributional property
the timing model sees: predicate selectivity.

Each query is a set of column predicates.  The NDP run launches one
Evaluate kernel per predicate plus mask-AND combine kernels, verifying the
final mask against a numpy reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.host.api import pack_args
from repro.host.cpu import HostCPUModel, MemoryTarget
from repro.kernels.olap import EVAL_LT_I32, EVAL_RANGE_F64, EVAL_RANGE_I32, MASK_AND
from repro.workloads.base import NDPRunResult, Platform, ScalePreset, rng


@dataclass(frozen=True)
class Predicate:
    """One column predicate of a query's WHERE clause."""

    column: str
    kind: str                # "range_i32" | "lt_i32" | "range_f64"
    lo: float
    hi: float

    @property
    def bytes_per_row(self) -> int:
        return 8 if self.kind == "range_f64" else 4


@dataclass(frozen=True)
class OLAPQuery:
    """A query with its Evaluate predicates and baseline phase split.

    ``evaluate_fraction`` is the share of baseline runtime spent in the
    offloaded Evaluate phase (drives the Fig 10a stacked bars);
    ``baseline_cpi_ns`` is per-row-per-predicate branchy evaluation cost on
    the host CPU.
    """

    name: str
    predicates: tuple[Predicate, ...]
    evaluate_fraction: float
    baseline_cpi_ns: float = 1.0

    @property
    def bytes_per_row(self) -> int:
        return sum(p.bytes_per_row for p in self.predicates)


# Date encoding: days since 1992-01-01; discounts in basis points where
# integral, raw f64 where the paper's predicate is fractional.
QUERIES: dict[str, OLAPQuery] = {
    "q6": OLAPQuery(
        name="q6",
        predicates=(
            Predicate("l_shipdate", "range_i32", 730, 1095),      # 1 year
            Predicate("l_discount", "range_f64", 0.05, 0.07),
            Predicate("l_quantity", "lt_i32", 0, 24),
        ),
        evaluate_fraction=0.48,
        baseline_cpi_ns=0.9,
    ),
    "q14": OLAPQuery(
        name="q14",
        predicates=(
            Predicate("l_shipdate", "range_i32", 850, 880),       # 1 month
        ),
        evaluate_fraction=0.52,
        baseline_cpi_ns=2.2,
    ),
    "q1_1": OLAPQuery(
        name="q1_1",
        predicates=(
            Predicate("lo_orderdate", "range_i32", 365, 730),
            Predicate("lo_discount", "range_i32", 1, 4),
            Predicate("lo_quantity", "lt_i32", 0, 25),
        ),
        evaluate_fraction=0.45,
        baseline_cpi_ns=0.7,
    ),
    "q1_2": OLAPQuery(
        name="q1_2",
        predicates=(
            Predicate("lo_orderdate", "range_i32", 396, 427),     # 1 month
            Predicate("lo_discount", "range_i32", 4, 7),
            Predicate("lo_quantity", "range_i32", 26, 36),
        ),
        evaluate_fraction=0.42,
        baseline_cpi_ns=0.6,
    ),
    "q1_3": OLAPQuery(
        name="q1_3",
        predicates=(
            Predicate("lo_orderdate", "range_i32", 370, 377),     # 1 week
            Predicate("lo_discount", "range_i32", 5, 8),
            Predicate("lo_quantity", "range_i32", 26, 36),
        ),
        evaluate_fraction=0.43,
        baseline_cpi_ns=0.65,
    ),
}


@dataclass
class OLAPData:
    """Generated columns and their numpy reference mask."""

    query: OLAPQuery
    rows: int
    columns: dict[str, np.ndarray]
    reference_mask: np.ndarray


def generate(query_name: str, rows: int, salt: int = 0) -> OLAPData:
    """Synthesize columns so each predicate sees realistic selectivity."""
    query = QUERIES[query_name]
    gen = rng(salt + hash(query_name) % 1000)
    columns: dict[str, np.ndarray] = {}
    mask = np.ones(rows, dtype=bool)
    for pred in query.predicates:
        if pred.kind == "range_f64":
            data = gen.uniform(0.0, 0.11, rows).round(2)
            columns[pred.column] = data.astype(np.float64)
            mask &= (data >= pred.lo) & (data <= pred.hi)
        else:
            span = {"l_shipdate": 2557, "lo_orderdate": 2557}.get(
                pred.column, 50
            )
            data = gen.integers(0, span, rows, dtype=np.int32)
            columns[pred.column] = data
            if pred.kind == "lt_i32":
                mask &= data < pred.hi
            else:
                mask &= (data >= pred.lo) & (data < pred.hi)
    return OLAPData(query=query, rows=rows, columns=columns,
                    reference_mask=mask)


_KERNELS = {
    "range_i32": EVAL_RANGE_I32,
    "lt_i32": EVAL_LT_I32,
    "range_f64": EVAL_RANGE_F64,
}


def run_ndp_evaluate(platform: Platform, data: OLAPData) -> NDPRunResult:
    """Offload the Evaluate phase: one kernel per predicate + mask ANDs."""
    runtime = platform.runtime
    query = data.query
    rows = data.rows

    col_addrs = {
        name: runtime.alloc_array(col) for name, col in data.columns.items()
    }
    mask_addrs = [runtime.alloc(rows) for _ in query.predicates]

    total_ns = 0.0
    instances = 0
    start_bytes = platform.stats.get("cxl_dram.bytes")

    for pred, mask_addr in zip(query.predicates, mask_addrs):
        col = data.columns[pred.column]
        addr = col_addrs[pred.column]
        if pred.kind == "range_f64":
            lo_bits = np.float64(pred.lo).view(np.uint64)
            hi_bits = np.float64(pred.hi).view(np.uint64)
            args = pack_args(mask_addr, int(lo_bits), int(hi_bits))
        else:
            args = pack_args(mask_addr, int(pred.lo), int(pred.hi))
        instance = runtime.run_kernel(
            _KERNELS[pred.kind], addr, addr + col.nbytes, args=args,
            name=f"{query.name}.{pred.column}",
        )
        total_ns += instance.runtime_ns
        instances += 1

    # combine masks pairwise into mask_addrs[0]
    final_addr = mask_addrs[0]
    for other in mask_addrs[1:]:
        instance = runtime.run_kernel(
            MASK_AND, final_addr, final_addr + rows,
            args=pack_args(other, final_addr), name=f"{query.name}.and",
        )
        total_ns += instance.runtime_ns
        instances += 1

    produced = runtime.read_array(final_addr, np.uint8, rows).astype(bool)
    correct = bool(np.array_equal(produced, data.reference_mask))

    return NDPRunResult(
        name=f"olap.{query.name}",
        runtime_ns=total_ns,
        correct=correct,
        instance_count=instances,
        dram_bytes=platform.stats.get("cxl_dram.bytes") - start_bytes,
        extras={"selectivity": float(data.reference_mask.mean())},
    )


# ---------------------------------------------------------------------------
# baselines (§IV-A): host CPU with passive CXL memory; CPU-NDP; Ideal NDP
# ---------------------------------------------------------------------------

def baseline_evaluate_ns(data: OLAPData, cpu: HostCPUModel | None = None,
                         ltu_ns: float = 150.0) -> float:
    """Host-CPU Evaluate over CXL.

    The baseline engine (Polars-style) evaluates each query's filter as a
    latency-bound single-threaded column sweep over the CXL link; per-row
    branchy predicate evaluation adds CPU time (see DESIGN.md calibration
    notes).
    """
    cpu = cpu if cpu is not None else HostCPUModel()
    query = data.query
    memory = MemoryTarget("cxl", ltu_ns, 64.0)
    stream_ns = data.rows * query.bytes_per_row / cpu.scan_bandwidth(
        memory, threads=1
    )
    compute_ns = data.rows * len(query.predicates) * query.baseline_cpi_ns
    return stream_ns + compute_ns


def cpu_ndp_evaluate_ns(data: OLAPData, cpu: HostCPUModel | None = None) -> float:
    """CPU-NDP: 32 high-end cores inside the device (§IV-A)."""
    from repro.config import cpu_ndp_config

    cpu = cpu if cpu is not None else HostCPUModel(cpu_ndp_config())
    memory = MemoryTarget.device_internal(bandwidth=409.6, latency_ns=75.0)
    query = data.query
    stream_ns = data.rows * query.bytes_per_row / cpu.scan_bandwidth(memory)
    compute_ns = data.rows * len(query.predicates) * 0.25 / cpu.config.num_cores
    return max(stream_ns, compute_ns)


def ideal_ndp_evaluate_ns(data: OLAPData,
                          internal_bw: float = 409.6) -> float:
    """Ideal NDP: 100 % of internal DRAM bandwidth (§IV-C)."""
    query = data.query
    # reads every predicate column + writes/reads masks for combining
    mask_traffic = (2 * len(query.predicates)) * data.rows
    return (data.rows * query.bytes_per_row + mask_traffic) / internal_bw


def full_query_phases_ns(data: OLAPData, evaluate_ns: float,
                         baseline_eval_ns: float) -> dict[str, float]:
    """Split a full query into Evaluate / Filter / Etc (Fig 10a bars).

    Filter and Etc stay on the host, so their absolute time is inherited
    from the baseline via the query's evaluate_fraction.
    """
    query = data.query
    baseline_total = baseline_eval_ns / query.evaluate_fraction
    other = baseline_total - baseline_eval_ns
    filter_ns = other * 0.55
    etc_ns = other * 0.45
    return {
        "evaluate": evaluate_ns,
        "filter": filter_ns,
        "etc": etc_ns,
        "total": evaluate_ns + filter_ns + etc_ns,
        "baseline_total": baseline_total,
    }
