"""Evaluation workloads (Table V): OLAP, KVStore, HISTO, SpMV, graphs,
DLRM, and OPT generation."""

from repro.workloads.base import (
    NDPRunResult,
    Platform,
    SCALES,
    ScalePreset,
    make_platform,
    rng,
    scale,
)

__all__ = [
    "NDPRunResult",
    "Platform",
    "SCALES",
    "ScalePreset",
    "make_platform",
    "rng",
    "scale",
]
