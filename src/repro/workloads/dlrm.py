"""DLRM inference workload (§IV-B): SparseLengthsSum over CXL-resident
embedding tables.

A request gathers ``lookups_per_request`` rows of the embedding table
(indices zipfian-skewed like Criteo traffic) and sums them; batches of 4,
32 and 256 requests bound the kernel grain.  SLS is the CXL-link-bound 80 %
of DLRM inference the paper offloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.host.api import pack_args
from repro.host.gpu import GPUKernelSpec, WarpProfile
from repro.kernels.dlrm import DLRM_SLS
from repro.workloads.base import NDPRunResult, Platform, rng

LOOKUPS_PER_REQUEST = 80   # [77]


def zipf_indices(gen: np.random.Generator, n_rows: int, count: int,
                 alpha: float = 1.05) -> np.ndarray:
    """Zipfian-ish row popularity (Criteo-like reuse skew)."""
    raw = gen.zipf(alpha, size=count)
    return ((raw - 1) % n_rows).astype(np.int64)


@dataclass
class DLRMData:
    table: np.ndarray            # [rows, dim] f32
    indices: np.ndarray          # [batch * lookups] i64
    batch: int
    lookups: int
    reference: np.ndarray        # [batch, dim] f32

    @property
    def dim(self) -> int:
        return self.table.shape[1]

    @property
    def row_bytes(self) -> int:
        return self.dim * 4


def generate(n_rows: int, batch: int, dim: int = 64,
             lookups: int = LOOKUPS_PER_REQUEST, salt: int = 0) -> DLRMData:
    gen = rng(salt + batch)
    table = gen.normal(0.0, 1.0, (n_rows, dim)).astype(np.float32)
    indices = zipf_indices(gen, n_rows, batch * lookups)
    gathered = table[indices.reshape(batch, lookups)]
    reference = gathered.sum(axis=1, dtype=np.float32)
    return DLRMData(table=table, indices=indices, batch=batch,
                    lookups=lookups, reference=reference)


def run_ndp(platform: Platform, data: DLRMData) -> NDPRunResult:
    runtime = platform.runtime
    table_addr = runtime.alloc_array(data.table)
    idx_addr = runtime.alloc_array(data.indices)
    out_addr = runtime.alloc(data.batch * data.row_bytes)
    start_bytes = platform.stats.get("cxl_dram.bytes")

    instance = runtime.run_kernel(
        DLRM_SLS,
        out_addr,
        out_addr + data.batch * data.row_bytes,   # pool = output vectors
        args=pack_args(idx_addr, table_addr, data.lookups, data.row_bytes),
        name=f"dlrm_b{data.batch}",
    )
    produced = runtime.read_array(out_addr, np.float32,
                                  data.batch * data.dim)
    produced = produced.reshape(data.batch, data.dim)
    correct = bool(np.allclose(produced, data.reference, rtol=1e-3, atol=1e-3))

    return NDPRunResult(
        name=f"dlrm_b{data.batch}",
        runtime_ns=instance.runtime_ns,
        correct=correct,
        instructions=instance.instructions,
        uthreads=instance.uthreads_done,
        dram_bytes=platform.stats.get("cxl_dram.bytes") - start_bytes,
        extras={"launch_to_done_ns": instance.total_latency_ns,
                "global_accesses": platform.stats.get("ndp.global_accesses")},
    )


def gpu_spec(data: DLRMData, tb_size: int = 128) -> GPUKernelSpec:
    """One warp gathers/accumulates 32 f32 lanes of one request's output;
    each lookup is one 128 B (4-sector) coalesced load."""
    warps_per_request = max(1, data.dim // 32)
    total_warps = data.batch * warps_per_request

    def profile(_warp: int) -> WarpProfile:
        return WarpProfile(
            instructions=10 + data.lookups * 7,
            mem_ops=[(4, False)] * data.lookups + [(4, True)],
            mlp=1,
        )

    return GPUKernelSpec(
        name=f"dlrm_b{data.batch}.gpu",
        total_warps=total_warps,
        warps_per_tb=tb_size // 32,
        warp_profile=profile,
        regs_per_thread=24,
    )


def bytes_touched(data: DLRMData) -> int:
    """Embedding traffic of one batch (for analytic baselines)."""
    return data.batch * data.lookups * data.row_bytes
