"""HISTO workload (§IV-B): histogram of 16M int32 into 256 or 4096 bins.

M2NDP builds per-unit partial histograms in the NDP-unit-scope scratchpad
(32 partials device-wide); a GPU must keep a partial per *threadblock*
(hundreds), whose merges amplify global traffic and add per-block
synchronization — the Fig 6b effect, and the reason HISTO4096 is M2NDP's
largest win over GPU-NDP(Iso-Area) (5.48x, §IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.host.api import pack_args
from repro.host.gpu import GPUKernelSpec, WarpProfile
from repro.kernels.histogram import HISTOGRAM
from repro.workloads.base import NDPRunResult, Platform, rng

#: Scratchpad bytes the kernel needs: bins live at offset 0x100.
def scratchpad_bytes(nbins: int) -> int:
    return 0x100 + nbins * 4


@dataclass
class HistogramData:
    values: np.ndarray
    nbins: int
    reference: np.ndarray


def generate(elements: int, nbins: int, salt: int = 0) -> HistogramData:
    if nbins & (nbins - 1):
        raise ValueError(f"nbins must be a power of two, got {nbins}")
    gen = rng(salt + nbins)
    values = gen.integers(0, 1 << 30, elements, dtype=np.int32)
    reference = np.bincount(values & (nbins - 1), minlength=nbins)
    return HistogramData(values=values, nbins=nbins,
                         reference=reference.astype(np.int64))


def run_ndp(platform: Platform, data: HistogramData) -> NDPRunResult:
    runtime = platform.runtime
    input_addr = runtime.alloc_array(data.values)
    bins_addr = runtime.alloc(data.nbins * 4)
    start_bytes = platform.stats.get("cxl_dram.bytes")

    instance = runtime.run_kernel(
        HISTOGRAM,
        input_addr,
        input_addr + data.values.nbytes,
        args=pack_args(data.nbins, bins_addr),
        scratchpad_bytes=scratchpad_bytes(data.nbins),
        name=f"histo{data.nbins}",
    )
    produced = runtime.read_array(bins_addr, np.int32, data.nbins)
    correct = bool(np.array_equal(produced.astype(np.int64), data.reference))

    return NDPRunResult(
        name=f"histo{data.nbins}",
        runtime_ns=instance.runtime_ns,
        correct=correct,
        instructions=instance.instructions,
        uthreads=instance.uthreads_done,
        dram_bytes=platform.stats.get("cxl_dram.bytes") - start_bytes,
        extras={
            "spad_bytes": platform.stats.get("ndp.spad_traffic_bytes"),
            "global_bytes": platform.stats.get("ndp.global_traffic_bytes"),
            "global_accesses": platform.stats.get("ndp.global_accesses"),
        },
    )


def gpu_spec(data: HistogramData, tb_size: int = 128,
             elements_per_thread: int = 4) -> GPUKernelSpec:
    """CUDA-samples-style histogram: TB-private shared-memory bins, merged
    into global bins when the TB retires.

    The TB-scope shared memory costs show up per warp: zero-initializing
    the private bins, a __syncthreads barrier, and the global-atomic merge
    of ``nbins / tb_size`` bins per thread (Fig 6b's traffic and the
    HISTO4096 blowup of §IV-C).
    """
    threads = (len(data.values) + elements_per_thread - 1) // elements_per_thread
    total_warps = (threads + 31) // 32
    warps_per_tb = tb_size // 32
    # per element: load + mask + shift + shared atomic + loop ≈ 6 instrs,
    # plus SIMT index-calculation overhead (§III-D A1)
    instr_per_warp = elements_per_thread * 8
    loads_per_warp = elements_per_thread  # 128 B coalesced = 4 sectors each
    bins_per_thread = max(1, data.nbins // tb_size)
    # init (shared writes) + merge loop instructions
    overhead_instr = bins_per_thread * 2 + bins_per_thread * 4 + 8
    # merge: each thread's bins_per_thread global atomics; a warp's 32
    # threads touch 32 consecutive bins = 4 sectors per round
    flush_ops = [(4, True)] * bins_per_thread

    def profile(_warp: int) -> WarpProfile:
        return WarpProfile(
            instructions=instr_per_warp + overhead_instr,
            mem_ops=[(4, False)] * loads_per_warp + flush_ops,
            mlp=6,
        )

    return GPUKernelSpec(
        name=f"histo{data.nbins}.gpu",
        total_warps=total_warps,
        warps_per_tb=warps_per_tb,
        warp_profile=profile,
        regs_per_thread=16,
        shared_mem_per_tb=data.nbins * 4,
    )
