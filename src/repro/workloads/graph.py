"""Graph analytics workloads (§IV-B): PGRANK and SSSP on CSR graphs.

Pannotia-style: PageRank iterates a two-body NDP kernel (contribution then
gather — the multi-body barrier); SSSP repeats Bellman-Ford relaxation
sweeps until the device-side changed-flag stays clear.  Graphs come from
the same power-law generator as SpMV, transposed for PageRank's
incoming-edge gathers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.host.api import pack_args
from repro.host.gpu import GPUKernelSpec, WarpProfile
from repro.kernels.graph import PAGERANK_ITER, SSSP_RELAX
from repro.workloads.base import NDPRunResult, Platform, rng
from repro.workloads.spmv import CSRMatrix, generate_csr

INF_DIST = 0x3FFFFFFF
DAMPING = 0.85


@dataclass
class GraphData:
    """CSR of incoming edges (for PGRANK) and outgoing edges (for SSSP)."""

    in_csr: CSRMatrix
    out_csr: CSRMatrix
    out_degree: np.ndarray      # i32
    weights: np.ndarray         # i32, aligned with out_csr.col_idx
    n_nodes: int


def generate(n_nodes: int, avg_degree: int, salt: int = 0) -> GraphData:
    out_csr = generate_csr(n_nodes, avg_degree, salt)
    in_csr = _transpose(out_csr)
    gen = rng(salt + 7)
    weights = gen.integers(1, 64, out_csr.nnz, dtype=np.int32)
    out_degree = np.diff(out_csr.row_ptr).astype(np.int32)
    return GraphData(in_csr=in_csr, out_csr=out_csr, out_degree=out_degree,
                     weights=weights, n_nodes=n_nodes)


def _transpose(csr: CSRMatrix) -> CSRMatrix:
    """CSR transpose (counting sort by destination)."""
    counts = np.bincount(csr.col_idx, minlength=csr.n_cols)
    row_ptr = np.zeros(csr.n_cols + 1, dtype=np.int64)
    np.cumsum(counts, out=row_ptr[1:])
    col_idx = np.empty(csr.nnz, dtype=np.int32)
    cursor = row_ptr[:-1].copy()
    for src in range(csr.n_rows):
        for k in range(csr.row_ptr[src], csr.row_ptr[src + 1]):
            dst = csr.col_idx[k]
            col_idx[cursor[dst]] = src
            cursor[dst] += 1
    return CSRMatrix(row_ptr=row_ptr, col_idx=col_idx,
                     values=np.zeros(csr.nnz, dtype=np.float32),
                     n_rows=csr.n_cols, n_cols=csr.n_rows)


# ---------------------------------------------------------------------------
# PageRank
# ---------------------------------------------------------------------------

def reference_pagerank_iter(data: GraphData, rank: np.ndarray) -> np.ndarray:
    contrib = np.where(data.out_degree > 0, rank / np.maximum(data.out_degree, 1), 0.0)
    new_rank = np.empty_like(rank)
    csr = data.in_csr
    teleport = (1.0 - DAMPING) / data.n_nodes
    for v in range(data.n_nodes):
        s = contrib[csr.col_idx[csr.row_ptr[v]:csr.row_ptr[v + 1]]].sum()
        new_rank[v] = teleport + DAMPING * s
    return new_rank


def run_ndp_pagerank(platform: Platform, data: GraphData,
                     iterations: int = 1) -> NDPRunResult:
    runtime = platform.runtime
    csr = data.in_csr
    n = data.n_nodes
    rp_addr = runtime.alloc_array(csr.row_ptr)
    ci_addr = runtime.alloc_array(csr.col_idx)
    deg_addr = runtime.alloc_array(data.out_degree)
    rank = np.full(n, 1.0 / n, dtype=np.float64)
    rank_addr = runtime.alloc_array(rank)
    contrib_addr = runtime.alloc(n * 8)
    out_addr = runtime.alloc(n * 8)
    start_bytes = platform.stats.get("cxl_dram.bytes")

    teleport = np.float64((1.0 - DAMPING) / n).view(np.uint64)
    damping = np.float64(DAMPING).view(np.uint64)

    reference = rank.copy()
    total_ns = 0.0
    instructions = 0
    uthreads = 0
    src_addr, dst_addr = rank_addr, out_addr
    for _ in range(iterations):
        instance = runtime.run_kernel(
            PAGERANK_ITER,
            rp_addr,
            rp_addr + n * 8,
            args=pack_args(ci_addr, src_addr, contrib_addr, deg_addr,
                           dst_addr, n, int(teleport), int(damping)),
            name="pgrank",
        )
        total_ns += instance.runtime_ns
        instructions += instance.instructions
        uthreads += instance.uthreads_done
        reference = reference_pagerank_iter(data, reference)
        src_addr, dst_addr = dst_addr, src_addr

    produced = runtime.read_array(src_addr, np.float64, n)
    correct = bool(np.allclose(produced, reference, rtol=1e-9, atol=1e-12))

    return NDPRunResult(
        name="pgrank",
        runtime_ns=total_ns,
        correct=correct,
        instance_count=iterations,
        instructions=instructions,
        uthreads=uthreads,
        dram_bytes=platform.stats.get("cxl_dram.bytes") - start_bytes,
        extras={"global_accesses": platform.stats.get("ndp.global_accesses")},
    )


# ---------------------------------------------------------------------------
# SSSP (Bellman-Ford sweeps)
# ---------------------------------------------------------------------------

def reference_sssp(data: GraphData, source: int = 0) -> np.ndarray:
    dist = np.full(data.n_nodes, INF_DIST, dtype=np.int64)
    dist[source] = 0
    csr = data.out_csr
    for _ in range(data.n_nodes):
        changed = False
        for u in range(data.n_nodes):
            if dist[u] >= INF_DIST:
                continue
            for k in range(csr.row_ptr[u], csr.row_ptr[u + 1]):
                v = csr.col_idx[k]
                nd = dist[u] + data.weights[k]
                if nd < dist[v]:
                    dist[v] = nd
                    changed = True
        if not changed:
            break
    return dist


def run_ndp_sssp(platform: Platform, data: GraphData, source: int = 0,
                 max_sweeps: int = 64) -> NDPRunResult:
    runtime = platform.runtime
    csr = data.out_csr
    n = data.n_nodes
    rp_addr = runtime.alloc_array(csr.row_ptr)
    ci_addr = runtime.alloc_array(csr.col_idx)
    w_addr = runtime.alloc_array(data.weights)
    dist = np.full(n, INF_DIST, dtype=np.int32)
    dist[source] = 0
    dist_addr = runtime.alloc_array(dist)
    flag_addr = runtime.alloc(8)
    start_bytes = platform.stats.get("cxl_dram.bytes")

    total_ns = 0.0
    instructions = 0
    uthreads = 0
    sweeps = 0
    kid = runtime.register_kernel(SSSP_RELAX, name="sssp")
    for _ in range(max_sweeps):
        runtime.device.physical.write_u64(flag_addr, 0)
        handle = runtime.launch_kernel(
            kid, rp_addr, rp_addr + n * 8,
            args=pack_args(ci_addr, w_addr, dist_addr, n, flag_addr),
            sync=True,
        )
        instance = runtime.device.controller.instances[handle.instance_id]
        total_ns += instance.runtime_ns
        instructions += instance.instructions
        uthreads += instance.uthreads_done
        sweeps += 1
        if runtime.device.physical.read_u64(flag_addr) == 0:
            break

    produced = runtime.read_array(dist_addr, np.int32, n).astype(np.int64)
    correct = bool(np.array_equal(produced, reference_sssp(data, source)))

    return NDPRunResult(
        name="sssp",
        runtime_ns=total_ns,
        correct=correct,
        instance_count=sweeps,
        instructions=instructions,
        uthreads=uthreads,
        dram_bytes=platform.stats.get("cxl_dram.bytes") - start_bytes,
        extras={"sweeps": sweeps,
                "global_accesses": platform.stats.get("ndp.global_accesses")},
    )


# ---------------------------------------------------------------------------
# GPU baselines
# ---------------------------------------------------------------------------

def gpu_spec_pagerank(data: GraphData, tb_size: int = 128) -> GPUKernelSpec:
    """Node-parallel gather: one thread per node, warp time tracks its
    longest in-edge list (from the actual transposed CSR)."""
    lengths = np.diff(data.in_csr.row_ptr)
    total_warps = (data.n_nodes + 31) // 32

    def profile(warp: int) -> WarpProfile:
        rows = lengths[warp * 32:(warp + 1) * 32]
        if len(rows) == 0:
            return WarpProfile(instructions=4, mem_ops=[])
        longest = int(rows.max())
        mean = float(rows.mean())
        instructions = 12 + longest * 9
        mem_ops = [(8, False)] * longest + [(1, True)]
        return WarpProfile(instructions=instructions, mem_ops=mem_ops,
                           active_lane_ratio=mean / longest if longest else 1.0,
                           mlp=2)

    return GPUKernelSpec(
        name="pgrank.gpu",
        total_warps=total_warps,
        warps_per_tb=tb_size // 32,
        warp_profile=profile,
        regs_per_thread=28,
    )


def gpu_spec_sssp(data: GraphData, tb_size: int = 128) -> GPUKernelSpec:
    lengths = np.diff(data.out_csr.row_ptr)
    total_warps = (data.n_nodes + 31) // 32

    def profile(warp: int) -> WarpProfile:
        rows = lengths[warp * 32:(warp + 1) * 32]
        if len(rows) == 0:
            return WarpProfile(instructions=4, mem_ops=[])
        longest = int(rows.max())
        mean = float(rows.mean())
        instructions = 10 + longest * 11
        mem_ops = [(8, False)] * longest
        return WarpProfile(instructions=instructions, mem_ops=mem_ops,
                           active_lane_ratio=mean / longest if longest else 1.0,
                           mlp=2)

    return GPUKernelSpec(
        name="sssp.gpu",
        total_warps=total_warps,
        warps_per_tb=tb_size // 32,
        warp_profile=profile,
        regs_per_thread=24,
    )
