"""Event-loop throughput guard for the Simulator hot path.

``Simulator.schedule`` is called once per burst/memory completion in the
interpreter backend — millions of times per experiment — so it pushes
onto the heap directly with a single validity guard.  This microbench
keeps a (very lenient) floor under schedule+dispatch throughput so a
future "harmless" refactor that reintroduces per-event overhead fails
loudly instead of silently doubling experiment wall-clock.
"""

import time

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator

#: Deliberately conservative: current throughput is >1M events/s on any
#: recent CPU; the floor only catches order-of-magnitude regressions.
MIN_EVENTS_PER_SECOND = 100_000

N_EVENTS = 50_000


def _drain_n_events() -> float:
    sim = Simulator()
    fired = [0]

    def tick() -> None:
        fired[0] += 1
        if fired[0] < N_EVENTS:
            sim.schedule(1.0 + (fired[0] % 7), tick)

    sim.schedule(0.0, tick)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    assert fired[0] == N_EVENTS
    return N_EVENTS / elapsed


class TestEventThroughput:
    def test_schedule_rejects_negative_delay(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_then_run_is_ordered_from_callbacks(self):
        # the direct heap push must preserve schedule-time semantics:
        # now + delay, FIFO on ties
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("late"))
        sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: fired.append("a")))
        sim.schedule(1.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["b", "a", "late"]
        assert sim.now == 2.0

    def test_event_throughput_floor(self):
        # best of three runs, to shrug off scheduler noise on CI workers
        best = max(_drain_n_events() for _ in range(3))
        assert best > MIN_EVENTS_PER_SECOND, (
            f"event loop throughput regressed: {best:,.0f} events/s "
            f"(floor {MIN_EVENTS_PER_SECOND:,})"
        )
