"""Tests for clock-domain conversions."""

import pytest

from repro.errors import ConfigError
from repro.sim.clock import Clock


class TestClock:
    def test_ndp_clock_period(self):
        assert Clock.from_ghz(2.0).period_ns == 0.5

    def test_cycles_to_ns_roundtrip(self):
        clock = Clock.from_ghz(1.695)
        assert clock.ns_to_cycles(clock.cycles_to_ns(123)) == pytest.approx(123)

    def test_from_mhz(self):
        assert Clock.from_mhz(1695).freq_ghz == pytest.approx(1.695)

    def test_from_period(self):
        assert Clock.from_period_ns(0.5).freq_ghz == pytest.approx(2.0)

    def test_scaled(self):
        assert Clock.from_ghz(2.0).scaled(1.5).freq_ghz == pytest.approx(3.0)

    def test_invalid_frequency(self):
        with pytest.raises(ConfigError):
            Clock.from_ghz(0.0)
        with pytest.raises(ConfigError):
            Clock.from_period_ns(-1.0)
