"""Tests for statistics helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import (
    Distribution,
    IntervalSampler,
    StatsRegistry,
    geometric_mean,
    percentile,
)


class TestPercentile:
    def test_median_of_four(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_p0_is_min_p100_is_max(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_single_sample(self):
        assert percentile([42.0], 95) == 42.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1,
                    max_size=100),
           st.floats(min_value=0, max_value=100))
    def test_bounded_by_min_max(self, samples, pct):
        value = percentile(samples, pct)
        assert min(samples) <= value <= max(samples)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2,
                    max_size=50))
    def test_monotone_in_pct(self, samples):
        assert percentile(samples, 25) <= percentile(samples, 75)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_identity(self):
        assert geometric_mean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1,
                    max_size=20))
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


class TestDistribution:
    def test_summary(self):
        dist = Distribution()
        for v in (1.0, 2.0, 3.0):
            dist.add(v)
        assert dist.count == 3
        assert dist.mean == 2.0
        assert dist.min == 1.0
        assert dist.max == 3.0

    def test_p95(self):
        dist = Distribution()
        for v in range(1, 101):
            dist.add(float(v))
        assert dist.p95 == pytest.approx(95.05)

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            Distribution().mean


class TestDistributionAddMany:
    def test_matches_add_loop(self):
        import numpy as np
        loop, bulk = Distribution(), Distribution()
        values = [3.0, 1.0, 2.0, 5.0]
        for v in values:
            loop.add(v)
        bulk.add_many(np.asarray(values))
        assert bulk.samples == loop.samples
        assert bulk.count == 4

    def test_accepts_iterables_and_2d_arrays(self):
        import numpy as np
        dist = Distribution()
        dist.add_many([1.0, 2.0])
        dist.add_many(np.arange(4, dtype=np.float64).reshape(2, 2))
        assert dist.samples == [1.0, 2.0, 0.0, 1.0, 2.0, 3.0]

    def test_empty_is_noop(self):
        dist = Distribution()
        dist.add(1.0)
        _ = dist.percentile(50.0)  # warm the sort cache
        dist.add_many([])
        assert dist.count == 1

    def test_invalidates_percentile_cache(self):
        dist = Distribution()
        dist.add_many([1.0, 2.0, 3.0])
        assert dist.percentile(100.0) == 3.0
        dist.add_many([10.0])
        assert dist.percentile(100.0) == 10.0
        # and the interleaved form: cached sort, then bulk append
        assert dist.percentile(50.0) == 2.5

    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9),
                    min_size=1, max_size=50))
    def test_percentiles_identical_to_streaming(self, values):
        loop, bulk = Distribution(), Distribution()
        for v in values:
            loop.add(v)
        bulk.add_many(values)
        for pct in (0.0, 50.0, 95.0, 100.0):
            assert bulk.percentile(pct) == loop.percentile(pct)


class TestStatsRegistry:
    def test_add_and_get(self):
        stats = StatsRegistry()
        stats.add("a.b")
        stats.add("a.b", 2.0)
        assert stats.get("a.b") == 3.0

    def test_get_default(self):
        assert StatsRegistry().get("missing", 7.0) == 7.0

    def test_prefix_snapshot(self):
        stats = StatsRegistry()
        stats.add("dram.reads")
        stats.add("dram.writes")
        stats.add("cxl.bytes")
        assert set(stats.counters("dram.")) == {"dram.reads", "dram.writes"}

    def test_observe_distribution(self):
        stats = StatsRegistry()
        stats.observe("lat", 1.0)
        stats.observe("lat", 3.0)
        assert stats.distribution("lat").mean == 2.0

    def test_unknown_distribution_raises(self):
        with pytest.raises(KeyError):
            StatsRegistry().distribution("nope")

    def test_reset(self):
        stats = StatsRegistry()
        stats.add("x")
        stats.reset()
        assert stats.get("x") == 0.0

    def test_snapshot_sorted_regardless_of_insertion(self):
        stats = StatsRegistry()
        for key in ("z.bytes", "a.hits", "m.misses"):
            stats.add(key, 1.0)
        snap = stats.snapshot()
        assert list(snap) == ["a.hits", "m.misses", "z.bytes"]

    def test_snapshot_prefix_filter(self):
        stats = StatsRegistry()
        stats.add("dram.reads", 2.0)
        stats.add("cxl.bytes", 9.0)
        assert stats.snapshot("dram.") == {"dram.reads": 2.0}

    def test_to_json_stable_across_insertion_orders(self):
        import json
        forward, backward = StatsRegistry(), StatsRegistry()
        keys = ["b.two", "a.one", "c.three"]
        for key in keys:
            forward.add(key, 1.0)
        for key in reversed(keys):
            backward.add(key, 1.0)
        assert forward.to_json() == backward.to_json()
        assert json.loads(forward.to_json()) == {
            "a.one": 1.0, "b.two": 1.0, "c.three": 1.0}

    def test_observe_many_matches_observe_loop(self):
        loop, bulk = StatsRegistry(), StatsRegistry()
        values = [4.0, 2.0, 8.0]
        for v in values:
            loop.observe("lat", v)
        bulk.observe_many("lat", values)
        assert (bulk.distribution("lat").samples
                == loop.distribution("lat").samples)
        bulk.observe_many("lat", [1.0])
        assert bulk.distribution("lat").count == 4


class TestIntervalSampler:
    def test_series_step_function(self):
        sampler = IntervalSampler()
        sampler.record(0.0, 0.0)
        sampler.record(10.0, 1.0)
        series = sampler.series(0.0, 20.0, 5)
        values = [v for _, v in series]
        assert values == [0.0, 0.0, 1.0, 1.0, 1.0]

    def test_time_weighted_mean(self):
        sampler = IntervalSampler()
        sampler.record(0.0, 0.0)
        sampler.record(5.0, 1.0)
        # 0 for half the window, 1 for the other half
        assert sampler.time_weighted_mean(0.0, 10.0) == pytest.approx(0.5)

    def test_out_of_order_clamped(self):
        sampler = IntervalSampler()
        sampler.record(5.0, 1.0)
        sampler.record(3.0, 2.0)   # clamped to 5.0
        assert sampler.points[-1][0] == 5.0

    def test_series_validation(self):
        sampler = IntervalSampler()
        with pytest.raises(ValueError):
            sampler.series(0.0, 0.0, 5)
        with pytest.raises(ValueError):
            sampler.series(0.0, 1.0, 0)


class TestTimeline:
    def test_windowed_counter_deltas(self):
        registry = StatsRegistry()
        registry.add("serve.a.served", 3)
        timeline = registry.timeline("serve.")
        registry.add("serve.a.served", 5)
        window = timeline.mark(100.0)
        assert window.deltas == {"serve.a.served": 5.0}
        assert (window.start_ns, window.end_ns) == (0.0, 100.0)
        registry.add("serve.b.shed", 2)
        window = timeline.mark(250.0)
        assert window.deltas == {"serve.b.shed": 2.0}

    def test_prefix_filters_other_counters(self):
        registry = StatsRegistry()
        timeline = registry.timeline("serve.")
        registry.add("dram.row_hits", 7)
        registry.add("serve.x.served", 1)
        assert timeline.mark(10.0).deltas == {"serve.x.served": 1.0}

    def test_series_and_totals(self):
        registry = StatsRegistry()
        timeline = registry.timeline()
        registry.add("served", 4)
        timeline.mark(10.0)
        timeline.mark(20.0)          # empty window
        registry.add("served", 6)
        timeline.mark(30.0)
        assert timeline.series("served") == [
            (0.0, 10.0, 4.0), (10.0, 20.0, 0.0), (20.0, 30.0, 6.0)
        ]
        assert timeline.total("served") == 10.0

    def test_rates_per_second(self):
        registry = StatsRegistry()
        timeline = registry.timeline()
        registry.add("served", 5)
        window = timeline.mark(1_000.0)          # 5 in 1 µs = 5e6/s
        assert window.rate_per_s("served") == pytest.approx(5e6)
        assert timeline.peak_rate_per_s("served") == pytest.approx(5e6)

    def test_backwards_mark_rejected(self):
        registry = StatsRegistry()
        timeline = registry.timeline()
        timeline.mark(50.0)
        with pytest.raises(ValueError):
            timeline.mark(10.0)

    def test_suffix_sum_and_rates(self):
        registry = StatsRegistry()
        timeline = registry.timeline("serve.")
        registry.add("serve.a.served", 3)
        registry.add("serve.b.served", 2)
        registry.add("serve.a.shed", 1)
        window = timeline.mark(1_000.0)
        assert window.sum_suffix(".served") == 5.0
        assert window.rate_suffix_per_s(".served") == pytest.approx(5e6)
        assert timeline.peak_rate_suffix_per_s(".served") == pytest.approx(5e6)

    def test_start_ns_offsets_first_window(self):
        registry = StatsRegistry()
        timeline = registry.timeline(start_ns=700.0)
        registry.add("served", 1)
        window = timeline.mark(1_700.0)
        assert window.start_ns == 700.0
        assert window.span_ns == 1_000.0
