"""Tests for the discrete-event engine and virtual-time servers."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.engine import BandwidthServer, IssueServer, Simulator


class TestSimulator:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(9.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_fifo(self):
        sim = Simulator()
        fired = []
        for tag in range(5):
            sim.schedule(3.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5]

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_events_scheduled_during_execution(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(2.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 3.0, 5.0]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_peek_time(self):
        sim = Simulator()
        assert sim.peek_time() is None
        sim.schedule(4.0, lambda: None)
        assert sim.peek_time() == 4.0

    def test_reset(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.peek_time() is None

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(7):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 7

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                    max_size=50))
    def test_arbitrary_schedules_fire_sorted(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda t=d: fired.append(t))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestIssueServer:
    def test_idle_op_starts_immediately(self):
        server = IssueServer(width=4, period_ns=0.5)
        assert server.issue(10.0) == 10.0

    def test_throughput_limit(self):
        # width 4 at 0.5 ns/cycle => 8 ops/ns sustained
        server = IssueServer(width=4, period_ns=0.5)
        last = 0.0
        for _ in range(80):
            last = server.issue(0.0)
        # the 80th op starts after (80-1)/8 ns
        assert last == pytest.approx(79 / 8.0)

    def test_gap_resets_backlog(self):
        server = IssueServer(width=1, period_ns=1.0)
        server.issue(0.0)
        assert server.issue(100.0) == 100.0

    def test_next_free_does_not_charge(self):
        server = IssueServer(width=1, period_ns=1.0)
        assert server.next_free(0.0) == 0.0
        assert server.next_free(0.0) == 0.0
        assert server.ops_issued == 0

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            IssueServer(width=0, period_ns=1.0)
        with pytest.raises(SimulationError):
            IssueServer(width=1, period_ns=0.0)

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=100))
    def test_sustained_rate_never_exceeds_width(self, width, ops):
        server = IssueServer(width=width, period_ns=1.0)
        last = 0.0
        for _ in range(ops):
            last = server.issue(0.0)
        # ops issued over [0, last] window cannot exceed width/period rate
        assert last >= (ops - 1) / width - 1e-9


class TestBandwidthServer:
    def test_single_transfer_time(self):
        server = BandwidthServer(64.0)   # 64 bytes/ns
        assert server.transfer(0.0, 256) == pytest.approx(4.0)

    def test_back_to_back_transfers_queue(self):
        server = BandwidthServer(64.0)
        first = server.transfer(0.0, 256)
        second = server.transfer(0.0, 256)
        assert second == pytest.approx(first + 4.0)

    def test_idle_gap(self):
        server = BandwidthServer(1.0)
        server.transfer(0.0, 10)
        assert server.transfer(100.0, 10) == pytest.approx(110.0)

    def test_bytes_accounted(self):
        server = BandwidthServer(1.0)
        server.transfer(0.0, 10)
        server.transfer(0.0, 20)
        assert server.bytes_transferred == 30

    @given(st.lists(st.integers(min_value=1, max_value=4096), min_size=1,
                    max_size=30))
    def test_total_time_at_least_bytes_over_bw(self, sizes):
        server = BandwidthServer(8.0)
        finish = 0.0
        for size in sizes:
            finish = server.transfer(0.0, size)
        assert finish >= sum(sizes) / 8.0 - 1e-9


class TestServerReset:
    def test_issue_server_reset_clears_backlog_and_counts(self):
        server = IssueServer(width=2, period_ns=1.0)
        for _ in range(8):
            server.issue(0.0)
        assert server.busy_until > 0.0
        assert server.ops_issued == 8
        server.reset()
        assert server.busy_until == 0.0
        assert server.ops_issued == 0
        # a post-reset op starts immediately again
        assert server.issue(0.0) == 0.0

    def test_bandwidth_server_reset_clears_occupancy_and_bytes(self):
        server = BandwidthServer(4.0)
        server.transfer(0.0, 64)
        assert server.occupancy_end() > 0.0
        assert server.bytes_transferred == 64
        server.reset()
        assert server.occupancy_end() == 0.0
        assert server.bytes_transferred == 0
        assert server.transfer(0.0, 8) == pytest.approx(2.0)


class TestRunUntil:
    def test_until_advances_now_past_last_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.run(until=7.5)
        # the queue drained at t=1 but time still advances to the horizon
        # so components can be sampled at that exact instant
        assert fired == [1.0]
        assert sim.now == 7.5

    def test_until_on_empty_queue_advances_now(self):
        sim = Simulator()
        sim.run(until=3.0)
        assert sim.now == 3.0

    def test_until_before_now_keeps_now(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0
        sim.run(until=2.0)
        assert sim.now == 5.0

    def test_run_resumes_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(4.0, lambda: fired.append(4))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run(until=10.0)
        assert fired == [1, 4]
        assert sim.now == 10.0
