"""Tests for the energy model, area model (§IV-F) and analysis helpers."""

import pytest

from repro.analysis.roofline import fig1a_table, max_slowdown, mean_slowdown
from repro.analysis.speedup import SpeedupRow, SpeedupTable
from repro.area.model import (
    alu_area_reduction_vs_sm,
    gpu_sm_area,
    iso_area_sm_count,
    m2ndp_total_area,
    ndp_unit_area,
    register_file_reduction_vs_sm,
)
from repro.energy.model import EnergyModel
from repro.sim.stats import StatsRegistry


class TestAreaModel:
    def test_unit_area_matches_paper(self):
        """Paper §IV-F: one NDP unit is 0.83 mm²."""
        assert ndp_unit_area().total_mm2 == pytest.approx(0.83, rel=0.1)

    def test_register_file_part(self):
        parts = ndp_unit_area().parts
        assert parts["register_file"] == pytest.approx(0.25, rel=0.01)

    def test_l1_scratchpad_part(self):
        parts = ndp_unit_area().parts
        assert parts["l1_scratchpad"] == pytest.approx(0.45, rel=0.01)

    def test_total_area_matches_paper(self):
        """Paper: 32 NDP units cost 26.4 mm²."""
        assert m2ndp_total_area() == pytest.approx(26.4, rel=0.1)

    def test_iso_area_sm_count(self):
        """Paper: the M2NDP budget fits 16.2 Ampere SMs."""
        assert iso_area_sm_count() == pytest.approx(16.2, rel=0.1)

    def test_rf_reduction_81_percent(self):
        assert register_file_reduction_vs_sm() == pytest.approx(0.81, abs=0.02)

    def test_alu_reduction_69_percent(self):
        assert alu_area_reduction_vs_sm() == pytest.approx(0.69, abs=0.06)

    def test_sm_breakdown_positive(self):
        assert all(v > 0 for v in gpu_sm_area().parts.values())


class TestEnergyModel:
    def _ndp_stats(self):
        stats = StatsRegistry()
        stats.add("ndp.instructions", 1e6)
        stats.add("cxl_dram.bytes", 64e6)
        stats.add("ndp.spad_traffic_bytes", 1e6)
        return stats

    def test_ndp_cheaper_than_host_cpu(self):
        model = EnergyModel()
        stats = self._ndp_stats()
        ndp = model.ndp_run(stats, runtime_ns=200_000.0)
        # baseline moves the same data over the link, runs ~50x longer
        cpu = model.host_cpu_run(bytes_moved=64e6, instructions=16e6,
                                 runtime_ns=10_000_000.0)
        assert ndp.total_j < cpu.total_j
        reduction = 1.0 - ndp.total_j / cpu.total_j
        assert reduction > 0.5   # paper: 83.9% average for OLAP

    def test_static_energy_scales_with_runtime(self):
        model = EnergyModel()
        stats = self._ndp_stats()
        short = model.ndp_run(stats, runtime_ns=1e5)
        long = model.ndp_run(stats, runtime_ns=1e6)
        assert long.static_j == pytest.approx(10 * short.static_j)

    def test_perf_per_energy(self):
        model = EnergyModel()
        breakdown = model.ndp_run(self._ndp_stats(), runtime_ns=1e5)
        assert breakdown.perf_per_energy(1e5) > 0

    def test_gpu_ndp_static_scales_with_sms(self):
        model = EnergyModel()
        small = model.gpu_ndp_run(64e6, 1e6, 1e6, num_sms=8)
        big = model.gpu_ndp_run(64e6, 1e6, 1e6, num_sms=128)
        assert big.static_j > small.static_j


class TestRoofline:
    def test_all_workloads_slower_on_cxl(self):
        for row in fig1a_table():
            assert row["slowdown"] > 1.0

    def test_paper_range(self):
        """Paper Fig 1a: up to 9.9x slowdown, 6.3x average."""
        assert max_slowdown() == pytest.approx(9.9, rel=0.15)
        assert mean_slowdown() == pytest.approx(6.3, rel=0.2)


class TestSpeedupTable:
    def test_row_speedups(self):
        row = SpeedupRow("w", baseline_ns=100.0,
                         config_ns={"a": 50.0, "b": 25.0})
        assert row.speedup("a") == 2.0
        assert row.speedups() == {"a": 2.0, "b": 4.0}

    def test_gmean(self):
        table = SpeedupTable("t")
        table.add(SpeedupRow("w1", 100.0, {"a": 50.0}))
        table.add(SpeedupRow("w2", 100.0, {"a": 12.5}))
        assert table.gmean("a") == pytest.approx(4.0)

    def test_render_includes_gmean(self):
        table = SpeedupTable("t")
        table.add(SpeedupRow("w1", 100.0, {"a": 50.0}))
        out = table.render()
        assert "GMEAN" in out and "w1" in out
