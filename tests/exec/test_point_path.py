"""Point-engine path cache: generalized keys, hatches, staleness, pins.

The point engine (`repro/exec/point.py`) records one decision-trie of
taint-traced paths per *structural* launch key and replays arbitrary
same-shape launches against it.  These tests pin the behaviors the
serving-layer speedup rests on: value-generalized keys actually hit
across distinct requests, both escape hatches restore the prior
behavior, a verified-load mismatch invalidates the family instead of
replaying stale bytes, and the hit/miss counts on the canonical KVS_B
trace stay exactly where the PR left them.
"""

import numpy as np
import pytest

from repro.host.api import pack_args
from repro.host.offload import make_offload_path
from repro.workloads import kvstore
from repro.workloads.base import make_platform

#: Canonical fine-grained trace for the counter pins: 300 skewed GETs
#: against a 512-item table, every launch one µthread wide.
ITEMS, REQUESTS = 512, 300


def _run_kvs(platform):
    data = kvstore.kvs_b(ITEMS, REQUESTS)
    return kvstore.run_ndp(platform, data, make_offload_path("m2func"))


def _counters(platform):
    return {
        name: platform.stats.get(f"exec.{name}")
        for name in ("trace_cache_hits", "trace_cache_misses",
                     "trace_cache_hits_generalized", "trace_cache_hits_point",
                     "trace_cache_hits_batched", "trace_cache_hits_simt",
                     "point_launches")
    }


class TestGeneralizedKeys:
    def test_point_hits_across_distinct_requests(self):
        # 300 GETs with 300 different keys share ~10 structural shapes
        # (chain depth x found/not-found); value-generalized keys must
        # turn the repeats into hits even though every argument differs
        platform = make_platform(backend="batched")
        result = _run_kvs(platform)
        counters = _counters(platform)
        assert result.correct
        assert counters["trace_cache_hits_point"] > 0
        assert counters["trace_cache_hits_generalized"] > 0
        assert counters["trace_cache_hits_simt"] == 0

    def test_generalize_hatch_restores_exact_keys(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE_GENERALIZE", "0")
        platform = make_platform(backend="batched")
        result = _run_kvs(platform)
        counters = _counters(platform)
        assert result.correct
        assert counters["trace_cache_hits_generalized"] == 0

    def test_point_hatch_restores_masked_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_POINT", "0")
        platform = make_platform(backend="batched")
        result = _run_kvs(platform)
        counters = _counters(platform)
        assert result.correct
        assert counters["point_launches"] == 0
        assert counters["trace_cache_hits_point"] == 0


class TestRegressionPins:
    def test_kvs_b_hit_counts_exact(self):
        # the seed recorded 300 misses / 0 hits on this exact trace; the
        # generalized point path turns it into 290 hits / 10 misses (one
        # cold walk per structural shape).  A drift in either direction
        # means the keying or the trie changed behavior — fail loudly.
        platform = make_platform(backend="batched")
        result = _run_kvs(platform)
        counters = _counters(platform)
        assert result.correct
        assert counters["trace_cache_hits"] == 290
        assert counters["trace_cache_misses"] == 10
        assert counters["trace_cache_hits_generalized"] == 290
        assert counters["trace_cache_hits_point"] == 290
        assert counters["point_launches"] == REQUESTS

    def test_deterministic_latencies_across_fresh_runs(self):
        # wall-clock may vary; simulated time may not
        first = _run_kvs(make_platform(backend="batched"))
        second = _run_kvs(make_platform(backend="batched"))
        assert first.p95_ns == second.p95_ns
        assert first.mean_ns == second.mean_ns


#: Loads x5 and consumes it non-linearly (andi), which the taint tracer
#: can only handle by promoting the load to a *verified* byte compare at
#: replay time — the hook the staleness test needs.
MASK_KERNEL = """
.body
    ld   x4, 0(x3)
    ld   x5, 0(x4)
    andi x6, x5, 255
    sd   x6, 0(x1)
    ret
"""


class TestStaleTrace:
    def test_verified_load_mismatch_retraces(self):
        # replay must never produce bytes the live memory no longer
        # justifies: mutating the verified word invalidates the family
        # (a miss + fresh walk), and the next launch hits again
        platform = make_platform(backend="batched")
        runtime = platform.runtime
        addr_data = runtime.alloc_array(np.array([0x1234], dtype=np.int64))
        addr_out = runtime.alloc(32)
        kid = runtime.register_kernel(MASK_KERNEL)
        args = pack_args(addr_data)

        def launch():
            runtime.launch_kernel(kid, addr_out, addr_out + 32, args=args)
            return int(runtime.read_array(addr_out, np.int64, 1)[0])

        def hits_misses():
            return (platform.stats.get("exec.trace_cache_hits"),
                    platform.stats.get("exec.trace_cache_misses"))

        assert launch() == 0x34
        assert launch() == 0x34
        assert hits_misses() == (1, 1)

        platform.device.physical.store_array(
            addr_data, np.array([0x5678], dtype=np.int64))
        assert launch() == 0x78          # stale trace detected, retraced
        assert hits_misses() == (1, 2)
        assert launch() == 0x78          # fresh family replays again
        assert hits_misses() == (2, 2)
