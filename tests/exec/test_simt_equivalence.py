"""Randomized differential suite: masked SIMT engine vs the interpreter.

Kernels are generated from composable blocks that exercise exactly the
launch classes the SIMT engine absorbed from the interpreter fallback:
µthread-divergent hammocks, data-dependent loop trip counts, shared and
per-lane scalar atomics (with and without consumed old values), indexed
vector gathers with reductions, vector atomics onto shared bins, and
indexed scatters.  For every seeded kernel the engine must produce
**byte-identical memory** to the interpreter with zero interpreter
fallbacks, deterministic `runtime_ns` (same launch, same platform state
=> same timing, cached or not), and analytic timing within a documented
factor of the interpreter's event-driven schedule.
"""

import numpy as np
import pytest

from repro.host.api import pack_args
from repro.workloads.base import make_platform

#: Body µthreads per generated launch (8 per NDP unit).
N_SLICES = 256

#: SIMT timing is an analytic roofline, not an event schedule; it must
#: stay within this factor of the interpreter on the generated kernels.
SIMT_TIMING_FACTOR = 4.0

_SEEDS = range(8)


# ---------------------------------------------------------------------------
# kernel generator
# ---------------------------------------------------------------------------
#
# Register conventions: the prologue pins x20=table, x21=out, x22=accum,
# x23=accum2, x25=bins, x26=scat, x24=slice index; blocks use x4..x12 and
# v1..v4 as scratch.  Blocks that write the per-lane out slice get a
# unique 8-byte offset so cross-step store hazards cannot trigger.

_PROLOGUE = """
    ld   x20, 0(x3)        // table (read-only i64)
    ld   x21, 8(x3)        // out   (one 32 B slice per lane)
    ld   x22, 16(x3)       // accum (shared 8 B atomic cells)
    ld   x23, 24(x3)       // accum2 (per-lane 8 B atomic cells)
    ld   x25, 32(x3)       // bins  (shared 4 B vamo cells)
    ld   x26, 40(x3)       // scat  (one 32 B scatter slice per lane)
    srli x24, x2, 5        // slice index
"""


def _block_hammock(i, off, rng):
    mask = int(rng.integers(1, 8))
    c1 = int(rng.integers(1, 100))
    c2 = int(rng.integers(1, 100))
    return f"""
    andi x4, x24, {mask}
    beqz x4, else_{i}
    slli x5, x24, 1
    addi x5, x5, {c1}
    j    end_{i}
else_{i}:
    addi x5, x24, {c2}
end_{i}:
    add  x6, x21, x2
    sd   x5, {off}(x6)
"""


def _block_loop(i, off, rng):
    scale = int(rng.integers(1, 4))
    return f"""
    andi x4, x24, 255
    slli x4, x4, 3
    add  x4, x20, x4
    ld   x5, 0(x4)         // data-dependent trip count
    li   x6, 0
loop_{i}:
    blez x5, done_{i}
    add  x6, x6, x5
    addi x5, x5, -{scale}
    j    loop_{i}
done_{i}:
    add  x7, x21, x2
    sd   x6, {off}(x7)
"""


def _block_shared_amo(i, off, rng):
    cells = int(rng.choice([16, 32, 64])) - 1
    return f"""
    andi x4, x24, {cells}
    slli x4, x4, 3
    add  x4, x22, x4
    addi x5, x24, 1
    amoadd.d x0, x5, (x4)   // shared cell: old value discarded
"""


def _block_private_amo(i, off, rng):
    c = int(rng.integers(1, 50))
    op = rng.choice(["amomax.d", "amomin.d", "amoadd.d"])
    return f"""
    slli x4, x24, 3
    add  x4, x23, x4
    addi x5, x24, {c}
    {op} x6, x5, (x4)       // per-lane cell: old value is deterministic
    add  x7, x21, x2
    sd   x6, {off}(x7)
"""


def _block_gather(i, off, rng):
    span = int(rng.choice([63, 127]))
    return f"""
    li   x4, 4
    vsetvli x0, x4, e64
    vid.v v1
    vsll.vi v1, v1, 3       // element offsets 0,8,16,24
    andi x5, x24, {span}
    slli x5, x5, 3
    add  x6, x20, x5
    vluxei64.v v2, (x6), v1
    vmv.v.i v3, 0
    vredsum.vs v4, v2, v3
    vmv.x.s x7, v4
    add  x8, x21, x2
    sd   x7, {off}(x8)
"""


def _block_vamo_bins(i, off, rng):
    groups = int(rng.choice([2, 4])) - 1
    return f"""
    li   x4, 4
    vsetvli x0, x4, e32
    vid.v v1
    vsll.vi v1, v1, 2
    andi x5, x24, {groups}
    slli x5, x5, 4
    vadd.vx v1, v1, x5      // shared bin byte offsets
    vmv.v.i v2, 1
    vamoadde32.v v2, (x25), v1
"""


def _block_scatter(i, off, rng):
    return """
    li   x4, 4
    vsetvli x0, x4, e64
    vid.v v1
    vsll.vi v1, v1, 3
    add  x5, x26, x2
    vmv.v.x v2, x24
    vsuxei64.v v2, (x5), v1   // per-lane scatter slice
"""


_BLOCKS = [_block_hammock, _block_loop, _block_shared_amo,
           _block_private_amo, _block_gather, _block_vamo_bins,
           _block_scatter]


def build_kernel(seed: int) -> str:
    rng = np.random.default_rng(1000 + seed)
    count = int(rng.integers(3, 6))
    picks = rng.choice(len(_BLOCKS), size=count, replace=False)
    writers = {_block_hammock, _block_loop, _block_private_amo,
               _block_gather}
    offsets = iter([0, 8, 16, 24])
    body = [".body", _PROLOGUE]
    for i, pick in enumerate(picks):
        block = _BLOCKS[pick]
        off = next(offsets) if block in writers else 0
        body.append(block(i, off, rng))
    body.append("    ret")
    return "\n".join(body)


def _run(backend: str, seed: int, launches: int = 1):
    platform = make_platform(backend=backend)
    runtime = platform.runtime
    rng = np.random.default_rng(2000 + seed)
    table = rng.integers(0, 8, 256).astype(np.int64)
    table_addr = runtime.alloc_array(table)
    out_addr = runtime.alloc(N_SLICES * 32)
    accum_addr = runtime.alloc_array(rng.integers(0, 100, 64).astype(np.int64))
    accum2_addr = runtime.alloc_array(
        rng.integers(0, 100, N_SLICES).astype(np.int64))
    bins_addr = runtime.alloc_array(np.zeros(64, dtype=np.int32))
    scat_addr = runtime.alloc(N_SLICES * 32)
    args = pack_args(table_addr, out_addr, accum_addr, accum2_addr,
                     bins_addr, scat_addr)
    kid = runtime.register_kernel(build_kernel(seed))
    runtime_ns = []
    for _ in range(launches):
        handle = runtime.launch_kernel(
            kid, out_addr, out_addr + N_SLICES * 32, args=args)
        instance = runtime.device.controller.instances[handle.instance_id]
        runtime_ns.append(instance.runtime_ns)
    snapshot = (
        runtime.read_array(out_addr, np.uint8, N_SLICES * 32).tobytes(),
        runtime.read_array(accum_addr, np.uint8, 64 * 8).tobytes(),
        runtime.read_array(accum2_addr, np.uint8, N_SLICES * 8).tobytes(),
        runtime.read_array(bins_addr, np.uint8, 64 * 4).tobytes(),
        runtime.read_array(scat_addr, np.uint8, N_SLICES * 32).tobytes(),
    )
    return platform, runtime_ns, snapshot


@pytest.mark.parametrize("seed", _SEEDS)
def test_memory_byte_identical_and_no_fallbacks(seed):
    _, ns_i, mem_i = _run("interpreter", seed)
    platform, ns_b, mem_b = _run("batched", seed)
    assert mem_b == mem_i
    assert platform.stats.get("exec.batched_fallbacks") == 0
    assert platform.stats.get("exec.simt_launches") == 1
    ratio = ns_b[0] / ns_i[0]
    assert 1.0 / SIMT_TIMING_FACTOR <= ratio <= SIMT_TIMING_FACTOR


@pytest.mark.parametrize("seed", [0, 3, 5])
def test_runtime_ns_deterministic_across_runs(seed):
    _, ns_a, mem_a = _run("batched", seed)
    _, ns_b, mem_b = _run("batched", seed)
    assert ns_a == ns_b
    assert mem_a == mem_b


@pytest.mark.parametrize("seed", [1, 4])
def test_cached_replay_is_timing_and_byte_identical(seed, monkeypatch):
    results = {}
    for mode in ("1", "0"):
        monkeypatch.setenv("REPRO_TRACE_CACHE", mode)
        platform, ns, mem = _run("batched", seed, launches=2)
        results[mode] = (ns, mem, platform)
    (ns_cached, mem_cached, plat_cached) = results["1"]
    (ns_uncached, mem_uncached, _) = results["0"]
    assert mem_cached == mem_uncached
    # the cached second launch replays the recorded mask schedule; its
    # timing charge is byte-identical to a fresh trace of the same state
    assert ns_cached[1] == pytest.approx(ns_uncached[1], rel=1e-9)
    assert plat_cached.stats.get("exec.trace_cache_hits") == 1
    assert plat_cached.stats.get("exec.trace_cache_misses") == 1


def test_stats_parity_with_interpreter():
    # functional stats the engines must agree on exactly: instruction and
    # µthread counts, traffic bytes, atomic counts
    _, _, _ = _run("interpreter", 0)
    plat_i, _, _ = _run("interpreter", 2)
    plat_b, _, _ = _run("batched", 2)
    for stat in ("ndp.instructions", "ndp.uthreads_spawned",
                 "ndp.uthreads_finished", "ndp.global_traffic_bytes",
                 "ndp.global_accesses", "ndp.global_atomics"):
        assert plat_b.stats.get(stat) == plat_i.stats.get(stat), stat
