"""Execution-backend tests: selection, cross-equivalence, fallback.

The batched backend must produce *byte-identical* functional results to
the interpreter on the replayable kernels (vecadd, gemv, the OLAP filter),
stay within the documented tolerance on launch timing, and silently fall
back to the interpreter on everything it cannot replay.
"""

import numpy as np
import pytest

from repro.config import NDPConfig, SystemConfig, default_system
from repro.errors import ConfigError
from repro.exec import BatchedBackend, InterpreterBackend, make_backend
from repro.host.api import pack_args
from repro.kernels.gemv import GEMV_F32
from repro.kernels.olap import EVAL_RANGE_I32, MASK_AND
from repro.kernels.reduction import REDUCE_SUM_I64
from repro.kernels.vecadd import VECADD, VECADD_F32
from repro.workloads import olap
from repro.workloads.base import make_platform

#: Relative tolerance on launch runtime between backends: the batched
#: path's roofline timing tracks the interpreter's event-driven schedule
#: but is not bit-identical (see repro/exec docstring).
TIMING_RTOL = 0.45


def _platforms():
    return make_platform(backend="interpreter"), make_platform(backend="batched")


def _batched_stats(platform):
    return (platform.stats.get("exec.batched_launches"),
            platform.stats.get("exec.batched_fallbacks"))


class TestSelection:
    def test_default_is_interpreter(self):
        platform = make_platform()
        assert isinstance(platform.device.backend, InterpreterBackend)
        assert not isinstance(platform.device.backend, BatchedBackend)

    def test_batched_selected_by_name(self):
        platform = make_platform(backend="batched")
        assert isinstance(platform.device.backend, BatchedBackend)

    def test_config_default_backend(self):
        system = SystemConfig(ndp=NDPConfig(backend="batched"))
        platform = make_platform(system)
        assert isinstance(platform.device.backend, BatchedBackend)

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "batched")
        platform = make_platform()
        assert isinstance(platform.device.backend, BatchedBackend)

    def test_explicit_backend_beats_env_var(self, monkeypatch):
        # Experiments pin the interpreter for correctness (Fig 6 / Fig
        # 12a); the environment must not silently override those pins.
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "batched")
        platform = make_platform(backend="interpreter")
        assert not isinstance(platform.device.backend, BatchedBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            make_platform(backend="jit")

    def test_unknown_config_backend_rejected(self):
        with pytest.raises(ConfigError):
            NDPConfig(backend="jit")

    def test_registry_rejects_unknown(self):
        with pytest.raises(ConfigError):
            make_backend("nope", device=None)

    def test_device_delegates_active_executions(self):
        platform = make_platform(backend="batched")
        assert platform.device.active_executions == []


class TestVecaddEquivalence:
    N = 4096

    def _run(self, platform, source, dtype, mult):
        runtime = platform.runtime
        n = self.N
        a = (np.arange(n) * mult).astype(dtype)
        b = (np.arange(n)[::-1] * mult).astype(dtype)
        addr_a = runtime.alloc_array(a)
        addr_b = runtime.alloc_array(b)
        addr_c = runtime.alloc(a.nbytes)
        instance = runtime.run_kernel(
            source, addr_a, addr_a + a.nbytes, args=pack_args(addr_b, addr_c)
        )
        return runtime.read_array(addr_c, dtype, n), instance.runtime_ns

    def test_int64_rows_match(self):
        interp, batched = _platforms()
        out_i, ns_i = self._run(interp, VECADD, np.int64, 7)
        out_b, ns_b = self._run(batched, VECADD, np.int64, 7)
        assert np.array_equal(out_i, out_b)
        assert out_i[5] == 5 * 7 + (self.N - 6) * 7
        assert ns_b == pytest.approx(ns_i, rel=TIMING_RTOL)
        assert _batched_stats(batched) == (1, 0)

    def test_f32_bitwise_match(self):
        interp, batched = _platforms()
        out_i, _ = self._run(interp, VECADD_F32, np.float32, 0.25)
        out_b, _ = self._run(batched, VECADD_F32, np.float32, 0.25)
        assert np.array_equal(out_i.view(np.uint32), out_b.view(np.uint32))

    def test_dram_traffic_matches(self):
        interp, batched = _platforms()
        self._run(interp, VECADD, np.int64, 3)
        self._run(batched, VECADD, np.int64, 3)
        assert (interp.stats.get("cxl_dram.bytes")
                == batched.stats.get("cxl_dram.bytes"))
        assert (interp.stats.get("ndp.global_traffic_bytes")
                == batched.stats.get("ndp.global_traffic_bytes"))
        assert (interp.stats.get("ndp.instructions")
                == batched.stats.get("ndp.instructions"))


class TestGemvEquivalence:
    def _run(self, platform, rows=512, dim=64):
        gen = np.random.default_rng(7)
        weights = gen.normal(0, 0.1, (rows, dim)).astype(np.float32)
        x = gen.normal(0, 1, dim).astype(np.float32)
        runtime = platform.runtime
        w_addr = runtime.alloc_array(weights)
        x_addr = runtime.alloc_array(x)
        out_addr = runtime.alloc(rows * 4)
        instance = runtime.run_kernel(
            GEMV_F32, out_addr, out_addr + rows * 4,
            args=pack_args(w_addr, x_addr, dim), stride=4,
        )
        return runtime.read_array(out_addr, np.float32, rows), instance.runtime_ns

    def test_bitwise_outputs_and_timing(self):
        interp, batched = _platforms()
        out_i, ns_i = self._run(interp)
        out_b, ns_b = self._run(batched)
        # The batched reduction accumulates in the scalar executor's exact
        # element order, so even float results are bit-identical.
        assert np.array_equal(out_i.view(np.uint32), out_b.view(np.uint32))
        assert ns_b == pytest.approx(ns_i, rel=TIMING_RTOL)
        assert _batched_stats(batched) == (1, 0)


class TestOlapEquivalence:
    @pytest.mark.parametrize("query", ["q6", "q14", "q1_2"])
    def test_rows_match(self, query):
        rows = 1 << 13
        results = {}
        for backend in ("interpreter", "batched"):
            data = olap.generate(query, rows)
            platform = make_platform(backend=backend)
            run = olap.run_ndp_evaluate(platform, data)
            results[backend] = (run, platform)
        run_i, _ = results["interpreter"]
        run_b, platform_b = results["batched"]
        assert run_i.correct and run_b.correct
        assert run_i.dram_bytes == run_b.dram_bytes
        assert run_b.runtime_ns == pytest.approx(run_i.runtime_ns,
                                                 rel=TIMING_RTOL)
        launches, fallbacks = _batched_stats(platform_b)
        assert launches == run_b.instance_count
        assert fallbacks == 0

    def test_mask_and_aliasing_is_replayed(self):
        # MASK_AND reads the pool region and writes over it (the combined
        # mask lands on mask A); the write buffering must preserve the
        # read-before-write program order.
        rows = 4096
        outs = {}
        for backend in ("interpreter", "batched"):
            platform = make_platform(backend=backend)
            runtime = platform.runtime
            gen = np.random.default_rng(3)
            mask_a = gen.integers(0, 2, rows).astype(np.uint8)
            mask_b = gen.integers(0, 2, rows).astype(np.uint8)
            addr_a = runtime.alloc_array(mask_a)
            addr_b = runtime.alloc_array(mask_b)
            runtime.run_kernel(MASK_AND, addr_a, addr_a + rows,
                               args=pack_args(addr_b, addr_a))
            outs[backend] = runtime.read_array(addr_a, np.uint8, rows)
            expected = mask_a & mask_b
            assert np.array_equal(outs[backend], expected)
        assert np.array_equal(outs["interpreter"], outs["batched"])


#: Kernel with a genuine read-after-write race through memory: every
#: µthread stores to its slice then immediately loads the stored bytes
#: back — the SIMT engine buffers stores to the phase barrier, so it must
#: hand the launch to the interpreter rather than read stale data.
RAW_KERNEL = """
.body
    ld      x4, 0(x3)        // output base
    add     x4, x4, x2
    sd      x2, 0(x4)
    ld      x5, 0(x4)        // RAW via memory
    sd      x5, 8(x4)
    ret
"""


class TestSimtRouting:
    def test_amo_phase_kernel_runs_on_simt(self):
        # REDUCE_SUM uses .init/.final sections, scratchpad state and
        # amoadd — the whole former fallback bundle in one kernel.
        platform = make_platform(backend="batched")
        runtime = platform.runtime
        n = 2048
        values = np.arange(n, dtype=np.int64)
        addr = runtime.alloc_array(values)
        out = runtime.alloc(8)
        runtime.run_kernel(REDUCE_SUM_I64, addr, addr + n * 8,
                           args=pack_args(out), scratchpad_bytes=64)
        assert runtime.read_array(out, np.int64, 1)[0] == values.sum()
        assert _batched_stats(platform) == (0, 0)
        assert platform.stats.get("exec.simt_launches") == 1

    def test_small_launch_runs_on_simt(self):
        platform = make_platform(backend="batched")
        runtime = platform.runtime
        n = 32                      # 8 µthreads: below the batch threshold
        a = np.arange(n, dtype=np.int64)
        addr_a = runtime.alloc_array(a)
        addr_b = runtime.alloc_array(a)
        addr_c = runtime.alloc(n * 8)
        runtime.run_kernel(VECADD, addr_a, addr_a + n * 8,
                           args=pack_args(addr_b, addr_c))
        assert np.array_equal(runtime.read_array(addr_c, np.int64, n), 2 * a)
        assert _batched_stats(platform) == (0, 0)
        assert platform.stats.get("exec.simt_launches") == 1

    def test_divergent_branches_run_on_simt(self):
        # Threads branch on their own offset parity; the uniform lockstep
        # walk degrades to the masked engine, which must produce exactly
        # the interpreter's bytes.
        source = """
        .body
            ld      x4, 0(x3)        // output base
            add     x4, x4, x2
            srli    x5, x2, 5        // slice index
            andi    x6, x5, 1
            bnez    x6, odd
            li      x7, 111
            sd      x7, 0(x4)
            ret
        odd:
            li      x7, 222
            sd      x7, 0(x4)
            ret
        """
        platform = make_platform(backend="batched")
        runtime = platform.runtime
        n_slices = 256
        pool = runtime.alloc(n_slices * 32)
        out = runtime.alloc(n_slices * 32)
        runtime.run_kernel(source, pool, pool + n_slices * 32,
                           args=pack_args(out))
        produced = runtime.read_array(out, np.int64, n_slices * 4)
        expected = np.zeros(n_slices * 4, dtype=np.int64)
        expected[::8] = 111          # even slices write at offset 0 of 32B
        expected[4::8] = 222
        assert np.array_equal(produced, expected)
        assert _batched_stats(platform) == (0, 0)
        assert platform.stats.get("exec.simt_launches") == 1
        assert platform.stats.get(
            "exec.fallback_reason.divergent", 0.0) == 0

    def test_simt_escape_hatch_restores_fallbacks(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMT", "0")
        platform = make_platform(backend="batched")
        runtime = platform.runtime
        n = 2048
        values = np.arange(n, dtype=np.int64)
        addr = runtime.alloc_array(values)
        out = runtime.alloc(8)
        runtime.run_kernel(REDUCE_SUM_I64, addr, addr + n * 8,
                           args=pack_args(out), scratchpad_bytes=64)
        assert runtime.read_array(out, np.int64, 1)[0] == values.sum()
        assert _batched_stats(platform) == (0, 1)
        assert platform.stats.get("exec.simt_launches") == 0
        assert platform.stats.get("exec.fallback_reason.phases") == 1


class TestFallback:
    def test_contended_amo_old_value_falls_back(self):
        # Every µthread amoadds to one shared cell AND stores the returned
        # old value: those olds depend on the interpreter's scheduling, so
        # the SIMT engine must hand the launch back instead of inventing
        # a lane-ordered history.
        source = """
        .body
            ld      x4, 0(x3)        // shared accumulator address
            ld      x5, 8(x3)        // output base
            add     x5, x5, x2
            li      x6, 1
            amoadd.d x7, x6, (x4)
            sd      x7, 0(x5)        // old value escapes to memory
            ret
        """
        platform = make_platform(backend="batched")
        runtime = platform.runtime
        n_slices = 128
        accum = runtime.alloc(8)
        out = runtime.alloc(n_slices * 32)
        pool = runtime.alloc(n_slices * 32)
        runtime.run_kernel(source, pool, pool + n_slices * 32,
                           args=pack_args(accum, out))
        total = runtime.read_array(accum, np.int64, 1)[0]
        olds = np.sort(runtime.read_array(out, np.int64, n_slices * 4)[::4])
        assert total == n_slices
        # the interpreter's olds are a permutation of 0..n-1
        assert np.array_equal(olds, np.arange(n_slices))
        launches, fallbacks = _batched_stats(platform)
        assert launches == 0
        assert fallbacks == 1
        assert platform.stats.get("exec.fallback_reason.atomic") == 1

    def test_raw_hazard_falls_back(self):
        # The interpreter fallback must still produce the right result,
        # and the aborted walk must not have leaked partial stores.
        platform = make_platform(backend="batched")
        runtime = platform.runtime
        n_slices = 128
        pool = runtime.alloc(n_slices * 32)
        out = runtime.alloc(n_slices * 32)
        runtime.run_kernel(RAW_KERNEL, pool, pool + n_slices * 32,
                           args=pack_args(out))
        produced = runtime.read_array(out, np.int64, n_slices * 4)
        offsets = np.arange(n_slices, dtype=np.int64) * 32
        assert np.array_equal(produced[::4], offsets)
        assert np.array_equal(produced[1::4], offsets)
        launches, fallbacks = _batched_stats(platform)
        assert launches == 0
        assert fallbacks == 1
        assert platform.stats.get("exec.fallback_reason.raw") == 1

    def test_translation_fault_falls_back(self):
        # Loads through an unmapped pointer cannot be vectorized (the
        # walk would need the interpreter's per-access fault semantics).
        source = """
        .body
            li      x4, 0x7F0000000
            ld      x5, 0(x4)       // unmapped -> translation fault
            sd      x5, 0(x1)
            ret
        """
        platform = make_platform(backend="batched")
        runtime = platform.runtime
        pool = runtime.alloc(128 * 32)
        from repro.errors import TranslationFault
        with pytest.raises(TranslationFault):
            runtime.run_kernel(source, pool, pool + 128 * 32)
        launches, fallbacks = _batched_stats(platform)
        assert launches == 0
        assert fallbacks == 1
        assert platform.stats.get("exec.fallback_reason.fault") == 1


class TestConcurrentLaunches:
    def test_fallback_launch_does_not_reexecute_batched_one(self):
        # Regression: a fast-path launch must be invisible to the
        # interpreter's fill scan while its completion is pending — a
        # concurrent fallback launch used to re-spawn all of its µthreads.
        platform = make_platform(backend="batched")
        runtime = platform.runtime
        n = 4096
        a = np.arange(n, dtype=np.int64)
        addr_a = runtime.alloc_array(a)
        addr_b = runtime.alloc_array(a)
        addr_c = runtime.alloc(n * 8)
        big = runtime.register_kernel(VECADD, name="big")
        raw = runtime.register_kernel(RAW_KERNEL, name="raw")

        handle_big = runtime.launch_async(
            big, addr_a, addr_a + n * 8, args=pack_args(addr_b, addr_c),
            sync=False,
        )
        # 48 µthreads with a RAW hazard: too wide for the point engine
        # (> lane width), so it runs on the interpreter and triggers
        # fill_all_units while the batched launch is in flight
        addr_d = runtime.alloc(48 * 32)
        handle_small = runtime.launch_async(
            raw, addr_a, addr_a + 48 * 32, args=pack_args(addr_d),
            sync=False,
        )
        runtime.wait_all()
        assert handle_big.complete_ns is not None
        assert handle_small.complete_ns is not None
        assert np.array_equal(runtime.read_array(addr_c, np.int64, n), 2 * a)
        expected_threads = n * 8 // 32 + 48
        assert platform.stats.get("ndp.uthreads_spawned") == expected_threads
        assert platform.stats.get("ndp.uthreads_finished") == expected_threads
        assert _batched_stats(platform) == (1, 1)
