"""Cross-launch trace cache: hits, misses, invalidation, escape hatch.

The cache may only ever change wall-clock time.  Every test therefore
checks functional outputs alongside the hit/miss counters, and the
timing test pins the cached path's ``runtime_ns`` to the uncached one.
"""

import numpy as np
import pytest

from repro.config import NDPConfig, SystemConfig
from repro.host.api import pack_args
from repro.kernels.reduction import REDUCE_SUM_I64
from repro.kernels.vecadd import VECADD
from repro.workloads.base import make_platform

N = 4096


def _cache_stats(platform):
    return (platform.stats.get("exec.trace_cache_hits"),
            platform.stats.get("exec.trace_cache_misses"))


def _setup_vecadd(platform, n=N, mult=3):
    runtime = platform.runtime
    a = (np.arange(n) * mult).astype(np.int64)
    b = (np.arange(n)[::-1] * mult).astype(np.int64)
    addr_a = runtime.alloc_array(a)
    addr_b = runtime.alloc_array(b)
    addr_c = runtime.alloc(a.nbytes)
    kid = runtime.register_kernel(VECADD)
    return runtime, kid, a, b, addr_a, addr_b, addr_c


def _launch(runtime, kid, addr_a, nbytes, args):
    handle = runtime.launch_kernel(kid, addr_a, addr_a + nbytes, args=args)
    instance = runtime.device.controller.instances[handle.instance_id]
    return instance


class TestHitsAndMisses:
    def test_repeat_launch_hits(self):
        platform = make_platform(backend="batched")
        runtime, kid, a, b, addr_a, addr_b, addr_c = _setup_vecadd(platform)
        args = pack_args(addr_b, addr_c)
        _launch(runtime, kid, addr_a, a.nbytes, args)
        assert _cache_stats(platform) == (0, 1)
        _launch(runtime, kid, addr_a, a.nbytes, args)
        _launch(runtime, kid, addr_a, a.nbytes, args)
        assert _cache_stats(platform) == (2, 1)
        assert np.array_equal(runtime.read_array(addr_c, np.int64, N), a + b)

    def test_cached_runtime_matches_uncached(self, monkeypatch):
        results = {}
        for mode in ("1", "0"):
            monkeypatch.setenv("REPRO_TRACE_CACHE", mode)
            platform = make_platform(backend="batched")
            runtime, kid, a, b, addr_a, addr_b, addr_c = _setup_vecadd(
                platform)
            args = pack_args(addr_b, addr_c)
            _launch(runtime, kid, addr_a, a.nbytes, args)
            second = _launch(runtime, kid, addr_a, a.nbytes, args)
            results[mode] = (second.runtime_ns,
                             runtime.read_array(addr_c, np.int64, N))
        cached_ns, cached_out = results["1"]
        uncached_ns, uncached_out = results["0"]
        assert np.array_equal(cached_out, uncached_out)
        assert cached_ns == pytest.approx(uncached_ns, rel=0.02)

    def test_data_change_between_hits_reexecutes(self):
        # a hit must re-run the functional replay: memory contents are not
        # part of the key and may have changed between launches
        platform = make_platform(backend="batched")
        runtime, kid, a, b, addr_a, addr_b, addr_c = _setup_vecadd(platform)
        args = pack_args(addr_b, addr_c)
        _launch(runtime, kid, addr_a, a.nbytes, args)
        b2 = b * 5
        platform.device.physical.store_array(addr_b, b2)
        _launch(runtime, kid, addr_a, a.nbytes, args)
        assert _cache_stats(platform) == (1, 1)
        assert np.array_equal(runtime.read_array(addr_c, np.int64, N),
                              a + b2)


class TestInvalidation:
    def test_changed_pool_shape_misses(self):
        platform = make_platform(backend="batched")
        runtime, kid, a, b, addr_a, addr_b, addr_c = _setup_vecadd(platform)
        args = pack_args(addr_b, addr_c)
        _launch(runtime, kid, addr_a, a.nbytes, args)
        # half the pool: same kernel, different launch geometry
        _launch(runtime, kid, addr_a, a.nbytes // 2, args)
        assert _cache_stats(platform) == (0, 2)
        assert np.array_equal(runtime.read_array(addr_c, np.int64, N // 2),
                              (a + b)[:N // 2])

    def test_changed_args_miss(self):
        platform = make_platform(backend="batched")
        runtime, kid, a, b, addr_a, addr_b, addr_c = _setup_vecadd(platform)
        addr_d = runtime.alloc(a.nbytes)
        _launch(runtime, kid, addr_a, a.nbytes, pack_args(addr_b, addr_c))
        _launch(runtime, kid, addr_a, a.nbytes, pack_args(addr_b, addr_d))
        assert _cache_stats(platform) == (0, 2)
        expected = a + b
        assert np.array_equal(runtime.read_array(addr_c, np.int64, N),
                              expected)
        assert np.array_equal(runtime.read_array(addr_d, np.int64, N),
                              expected)

    def test_changed_timing_config_uses_cold_cache(self):
        # a different NDPConfig builds a different device, so its cache
        # starts cold; outputs must match the default config bit for bit
        outputs = {}
        for label, system in (
            ("default", None),
            ("slow", SystemConfig(ndp=NDPConfig(freq_ghz=1.0,
                                                backend="batched"))),
        ):
            platform = make_platform(system, backend="batched")
            runtime, kid, a, b, addr_a, addr_b, addr_c = _setup_vecadd(
                platform)
            args = pack_args(addr_b, addr_c)
            _launch(runtime, kid, addr_a, a.nbytes, args)
            assert _cache_stats(platform) == (0, 1)
            outputs[label] = runtime.read_array(addr_c, np.int64, N)
        assert np.array_equal(outputs["default"], outputs["slow"])

    def test_translation_change_invalidates(self):
        platform = make_platform(backend="batched")
        runtime, kid, a, b, addr_a, addr_b, addr_c = _setup_vecadd(platform)
        args = pack_args(addr_b, addr_c)
        _launch(runtime, kid, addr_a, a.nbytes, args)
        device = platform.device
        table = device.page_table(runtime.asid)
        # remap some unrelated page: adding it is not a change, replacing
        # its translation is
        scratch_vpn = 0x7F000
        table.map_page(scratch_vpn, scratch_vpn)
        version = device.translation_version
        table.map_page(scratch_vpn, scratch_vpn + 1)
        assert device.translation_version == version + 1
        _launch(runtime, kid, addr_a, a.nbytes, args)
        assert _cache_stats(platform) == (0, 2)
        assert np.array_equal(runtime.read_array(addr_c, np.int64, N), a + b)

    def test_divergent_control_flow_retraces(self):
        # the cached replay follows live branch outcomes; when a uniform
        # data-dependent branch flips between launches the recorded trace
        # no longer matches and the launch must retrace, not mis-time
        source = """
        .body
            ld      x4, 0(x3)        // flag address
            ld      x5, 0(x4)        // uniform flag value
            beqz    x5, slow
            li      x7, 111
            sd      x7, 0(x1)
            ret
        slow:
            li      x7, 222
            li      x8, 1
            add     x7, x7, x8
            sd      x7, 0(x1)
            ret
        """
        platform = make_platform(backend="batched")
        runtime = platform.runtime
        flag_addr = runtime.alloc(8)
        platform.device.physical.write_i64(flag_addr, 1)
        pool = runtime.alloc(N)
        kid = runtime.register_kernel(source)
        args = pack_args(flag_addr)
        runtime.launch_kernel(kid, pool, pool + N, args=args)
        out = runtime.read_array(pool, np.int64, N // 8)
        assert np.all(out[::4] == 111)
        platform.device.physical.write_i64(flag_addr, 0)
        runtime.launch_kernel(kid, pool, pool + N, args=args)
        out = runtime.read_array(pool, np.int64, N // 8)
        assert np.all(out[::4] == 223)
        # the flipped branch is a retrace, not a hit
        assert _cache_stats(platform) == (0, 2)


class TestBypass:
    def test_simt_kernels_cache_their_mask_schedule(self):
        # phased/atomic kernels run on the masked SIMT engine and cache
        # their recorded schedule: the second identical launch is a hit,
        # and the replay re-runs functionally (the accumulator doubles)
        platform = make_platform(backend="batched")
        runtime = platform.runtime
        n = 2048
        values = np.arange(n, dtype=np.int64)
        addr = runtime.alloc_array(values)
        out = runtime.alloc(8)
        kid = runtime.register_kernel(REDUCE_SUM_I64, scratchpad_bytes=64)
        for _ in range(2):
            runtime.launch_kernel(kid, addr, addr + n * 8,
                                  args=pack_args(out))
        assert runtime.read_array(out, np.int64, 1)[0] == 2 * values.sum()
        assert _cache_stats(platform) == (1, 1)
        assert platform.stats.get("exec.batched_fallbacks") == 0
        assert platform.stats.get("exec.simt_launches") == 2

    def test_interpreter_fallbacks_bypass_cache(self, monkeypatch):
        # with the SIMT engine disabled the old fallback classes return
        # to the interpreter and never touch the trace cache
        monkeypatch.setenv("REPRO_SIMT", "0")
        platform = make_platform(backend="batched")
        runtime = platform.runtime
        n = 2048
        values = np.arange(n, dtype=np.int64)
        addr = runtime.alloc_array(values)
        out = runtime.alloc(8)
        kid = runtime.register_kernel(REDUCE_SUM_I64, scratchpad_bytes=64)
        for _ in range(2):
            runtime.launch_kernel(kid, addr, addr + n * 8,
                                  args=pack_args(out))
        assert runtime.read_array(out, np.int64, 1)[0] == 2 * values.sum()
        assert _cache_stats(platform) == (0, 0)
        assert platform.stats.get("exec.batched_fallbacks") == 2

    def test_env_var_disables_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        platform = make_platform(backend="batched")
        runtime, kid, a, b, addr_a, addr_b, addr_c = _setup_vecadd(platform)
        args = pack_args(addr_b, addr_c)
        for _ in range(3):
            _launch(runtime, kid, addr_a, a.nbytes, args)
        assert not platform.device.backend.trace_cache.enabled
        assert _cache_stats(platform) == (0, 0)
        assert platform.stats.get("exec.batched_launches") == 3
        assert np.array_equal(runtime.read_array(addr_c, np.int64, N), a + b)

    def test_capacity_is_bounded(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE_CAPACITY", "2")
        platform = make_platform(backend="batched")
        runtime, kid, a, b, addr_a, addr_b, addr_c = _setup_vecadd(platform)
        for offset in range(4):
            args = pack_args(addr_b, addr_c)
            _launch(runtime, kid, addr_a, a.nbytes - 32 * offset, args)
        assert len(platform.device.backend.trace_cache) == 2
