"""Cross-module integration tests: full-stack behaviours the paper relies
on, beyond single-workload correctness."""

import numpy as np
import pytest

from repro.host.api import M2NDPRuntime, pack_args
from repro.kernels.reduction import REDUCE_SUM_I64
from repro.kernels.vecadd import VECADD, VECADD_F32
from repro.ndp.device import M2NDPDevice
from repro.sim.engine import Simulator
from repro.workloads.base import make_platform


def fresh():
    sim = Simulator()
    device = M2NDPDevice(sim)
    return sim, device, M2NDPRuntime(device)


class TestReductionKernel:
    """The paper's Fig 8 example: init/body/finalizer with scratchpad."""

    def test_global_sum(self):
        _, device, runtime = fresh()
        n = 4096
        values = np.arange(n, dtype=np.int64)
        data_addr = runtime.alloc_array(values)
        result_addr = runtime.alloc(8)
        instance = runtime.run_kernel(
            REDUCE_SUM_I64, data_addr, data_addr + n * 8,
            args=pack_args(result_addr), scratchpad_bytes=0x110,
            name="reduce",
        )
        assert runtime.device.physical.read_i64(result_addr) == values.sum()
        # all three phases spawned µthreads
        assert instance.uthreads_done > instance.num_body_uthreads

    def test_phases_in_order(self):
        """Initializer must complete before bodies (barrier semantics):
        otherwise partial sums would be corrupted."""
        _, device, runtime = fresh()
        for trial in range(3):
            n = 1024
            values = np.ones(n, dtype=np.int64) * (trial + 1)
            data_addr = runtime.alloc_array(values)
            result_addr = runtime.alloc(8)
            runtime.run_kernel(
                REDUCE_SUM_I64, data_addr, data_addr + n * 8,
                args=pack_args(result_addr), scratchpad_bytes=0x110,
            )
            assert runtime.device.physical.read_i64(result_addr) == (trial + 1) * n


class TestFloat32Path:
    def test_vecadd_f32(self):
        _, _, runtime = fresh()
        n = 1024
        a = np.linspace(0, 1, n, dtype=np.float32)
        b = np.linspace(1, 2, n, dtype=np.float32)
        addr_a = runtime.alloc_array(a)
        addr_b = runtime.alloc_array(b)
        addr_c = runtime.alloc(n * 4)
        runtime.run_kernel(VECADD_F32, addr_a, addr_a + n * 4,
                           args=pack_args(addr_b, addr_c))
        out = runtime.read_array(addr_c, np.float32, n)
        assert np.allclose(out, a + b)


class TestVirtualMemoryIntegration:
    def test_tlb_shootdown_forces_refill(self):
        sim, device, runtime = fresh()
        n = 512
        a = np.arange(n, dtype=np.int64)
        addr_a = runtime.alloc_array(a)
        addr_b = runtime.alloc_array(a)
        addr_c = runtime.alloc(n * 8)
        runtime.run_kernel(VECADD, addr_a, addr_a + n * 8,
                           args=pack_args(addr_b, addr_c))
        fills_before = device.stats.get("ndp.tlb_fill")
        runtime.shootdown_tlb(runtime.asid, addr_a >> 12)
        runtime.run_kernel(VECADD, addr_a, addr_a + n * 8,
                           args=pack_args(addr_b, addr_c))
        assert device.stats.get("ndp.tlb_fill") >= fills_before

    def test_unmapped_pool_region_faults(self):
        from repro.errors import TranslationFault
        _, _, runtime = fresh()
        with pytest.raises(TranslationFault):
            runtime.run_kernel(VECADD, 0x9000_0000, 0x9000_0020,
                               args=pack_args(0x9000_0000, 0x9000_0000))


class TestDirtyHostCache:
    def test_results_correct_under_back_invalidation(self):
        platform = make_platform(dirty_fraction=0.8)
        runtime = platform.runtime
        n = 1024
        a = np.arange(n, dtype=np.int64)
        addr_a = runtime.alloc_array(a)
        addr_b = runtime.alloc_array(a)
        addr_c = runtime.alloc(n * 8)
        runtime.run_kernel(VECADD, addr_a, addr_a + n * 8,
                           args=pack_args(addr_b, addr_c))
        assert np.array_equal(runtime.read_array(addr_c, np.int64, n), 2 * a)
        assert platform.stats.get("hdm.back_invalidations") > 0

    def test_dirty_lines_slow_the_kernel(self):
        times = {}
        for fraction in (0.0, 0.8):
            platform = make_platform(dirty_fraction=fraction)
            runtime = platform.runtime
            n = 4096
            a = np.arange(n, dtype=np.int64)
            addr_a = runtime.alloc_array(a)
            addr_b = runtime.alloc_array(a)
            addr_c = runtime.alloc(n * 8)
            instance = runtime.run_kernel(
                VECADD, addr_a, addr_a + n * 8, args=pack_args(addr_b, addr_c)
            )
            times[fraction] = instance.runtime_ns
        assert times[0.8] > times[0.0]
        # but BI overlaps with other µthreads: bounded impact (Fig 13b)
        assert times[0.8] < 8 * times[0.0]


class TestSpawnGranularityAblation:
    def test_coarse_spawn_not_faster(self):
        times = {}
        for granularity in (1, 16):
            platform = make_platform(spawn_granularity=granularity)
            runtime = platform.runtime
            n = 8192
            a = np.arange(n, dtype=np.int64)
            addr_a = runtime.alloc_array(a)
            addr_b = runtime.alloc_array(a)
            addr_c = runtime.alloc(n * 8)
            instance = runtime.run_kernel(
                VECADD, addr_a, addr_a + n * 8, args=pack_args(addr_b, addr_c)
            )
            times[granularity] = instance.runtime_ns
        assert times[16] >= times[1] * 0.95


class TestLtUSensitivity:
    def test_kernel_runtime_latency_invariant(self):
        """Fig 13a: M2NDP kernels never cross the link, so their runtime is
        unaffected by CXL load-to-use latency."""
        from repro.config import default_system
        times = {}
        for ltu in (150.0, 600.0):
            platform = make_platform(default_system().with_ltu(ltu))
            runtime = platform.runtime
            n = 2048
            a = np.arange(n, dtype=np.int64)
            addr_a = runtime.alloc_array(a)
            addr_b = runtime.alloc_array(a)
            addr_c = runtime.alloc(n * 8)
            instance = runtime.run_kernel(
                VECADD, addr_a, addr_a + n * 8, args=pack_args(addr_b, addr_c)
            )
            times[ltu] = instance.runtime_ns
        assert times[600.0] == pytest.approx(times[150.0], rel=0.02)
