"""Property-based differential tests: NDP kernels vs numpy on random data.

These run the full stack (assembler → M2func → µthreads → DRAM) against
randomized inputs, which is the strongest correctness evidence the
reproduction has: any ISA, generator, or memory-system bug shows up as a
numeric mismatch.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.host.api import pack_args
from repro.kernels.olap import EVAL_RANGE_I32
from repro.kernels.reduction import REDUCE_SUM_I64
from repro.kernels.vecadd import VECADD, VECADD_F32
from repro.workloads.base import make_platform

SETTINGS = dict(max_examples=8, deadline=None)


class TestVecAddProperty:
    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=-(1 << 40), max_value=1 << 40))
    @settings(**SETTINGS)
    def test_int64_vecadd(self, blocks, offset):
        n = blocks * 4                      # whole 32 B slices
        platform = make_platform()
        runtime = platform.runtime
        rng = np.random.default_rng(blocks * 7 + 1)
        a = rng.integers(-(1 << 50), 1 << 50, n).astype(np.int64) + offset
        b = rng.integers(-(1 << 50), 1 << 50, n).astype(np.int64)
        addr_a = runtime.alloc_array(a)
        addr_b = runtime.alloc_array(b)
        addr_c = runtime.alloc(n * 8)
        runtime.run_kernel(VECADD, addr_a, addr_a + n * 8,
                           args=pack_args(addr_b, addr_c))
        out = runtime.read_array(addr_c, np.int64, n)
        assert np.array_equal(out, a + b)

    @given(st.integers(min_value=1, max_value=32))
    @settings(**SETTINGS)
    def test_f32_vecadd(self, blocks):
        n = blocks * 8
        platform = make_platform()
        runtime = platform.runtime
        rng = np.random.default_rng(blocks)
        a = rng.normal(0, 100, n).astype(np.float32)
        b = rng.normal(0, 100, n).astype(np.float32)
        addr_a = runtime.alloc_array(a)
        addr_b = runtime.alloc_array(b)
        addr_c = runtime.alloc(n * 4)
        runtime.run_kernel(VECADD_F32, addr_a, addr_a + n * 4,
                           args=pack_args(addr_b, addr_c))
        out = runtime.read_array(addr_c, np.float32, n)
        assert np.array_equal(out, a + b)   # exact: same fp32 adds


class TestReductionProperty:
    @given(st.integers(min_value=1, max_value=128))
    @settings(**SETTINGS)
    def test_sum_matches_numpy(self, blocks):
        n = blocks * 4
        platform = make_platform()
        runtime = platform.runtime
        rng = np.random.default_rng(blocks + 99)
        values = rng.integers(-(1 << 30), 1 << 30, n).astype(np.int64)
        addr = runtime.alloc_array(values)
        result_addr = runtime.alloc(8)
        runtime.run_kernel(REDUCE_SUM_I64, addr, addr + n * 8,
                           args=pack_args(result_addr),
                           scratchpad_bytes=0x110)
        assert runtime.device.physical.read_i64(result_addr) == values.sum()


class TestFilterProperty:
    @given(st.integers(min_value=0, max_value=500),
           st.integers(min_value=1, max_value=500))
    @settings(**SETTINGS)
    def test_range_mask_matches_numpy(self, lo, width):
        hi = lo + width
        n = 1024
        platform = make_platform()
        runtime = platform.runtime
        rng = np.random.default_rng(lo * 31 + width)
        column = rng.integers(0, 1000, n).astype(np.int32)
        addr = runtime.alloc_array(column)
        mask_addr = runtime.alloc(n)
        runtime.run_kernel(EVAL_RANGE_I32, addr, addr + n * 4,
                           args=pack_args(mask_addr, lo, hi))
        mask = runtime.read_array(mask_addr, np.uint8, n).astype(bool)
        assert np.array_equal(mask, (column >= lo) & (column < hi))


class TestDeterminism:
    def test_identical_runs_produce_identical_timing(self):
        """The whole simulator is deterministic: same inputs, same clocks."""
        times = []
        for _ in range(2):
            platform = make_platform()
            runtime = platform.runtime
            n = 2048
            a = np.arange(n, dtype=np.int64)
            addr_a = runtime.alloc_array(a)
            addr_b = runtime.alloc_array(a)
            addr_c = runtime.alloc(n * 8)
            instance = runtime.run_kernel(
                VECADD, addr_a, addr_a + n * 8, args=pack_args(addr_b, addr_c)
            )
            times.append(instance.runtime_ns)
        assert times[0] == times[1]
