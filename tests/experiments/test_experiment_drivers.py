"""Smoke + shape tests for the cheap experiment drivers (the expensive
ones are exercised by benchmarks/)."""

import pytest

from repro.experiments import EXPERIMENTS, PAPER_REFERENCE
from repro.experiments.common import ExperimentResult
from repro.experiments.fig05 import run_fig5
from repro.experiments.fig11 import run_fig11b
from repro.experiments.fig12 import _inflate_addressing, static_instruction_savings
from repro.experiments.fig14 import run_fig14b


class TestRegistry:
    def test_every_figure_has_a_driver(self):
        expected = {"fig1a", "fig1b", "fig5", "fig6a", "fig6b", "fig10a",
                    "fig10b", "fig10c", "fig11a", "fig11b", "fig12a",
                    "fig12b", "fig13a-freq", "fig13a-ltu", "fig13b",
                    "fig14a", "fig14b", "fig15-olap", "fig15-gpu",
                    "instr-savings", "resilience", "resilience-hedged",
                    "scaling", "scaling-policies",
                    "serving", "serving-autoscale"}
        assert expected <= set(EXPERIMENTS)

    def test_paper_reference_covers_headlines(self):
        assert PAPER_REFERENCE["fig10c"]["m2ndp_gmean"] == 6.35
        assert PAPER_REFERENCE["fig10a"]["evaluate_speedup_max"] == 128.0


class TestExperimentResult:
    def test_render_contains_rows(self):
        result = ExperimentResult("x", "title")
        result.add(a=1, b=2.5)
        out = result.render()
        assert "title" in out and "2.500" in out

    def test_column_extraction(self):
        result = ExperimentResult("x", "t")
        result.add(v=1)
        result.add(v=2)
        assert result.column("v") == [1, 2]


class TestFig5Driver:
    def test_paper_reductions(self):
        result = run_fig5()
        assert "33%-75%" in result.notes
        assert "17%-37%" in result.notes

    def test_custom_latencies(self):
        result = run_fig5(kernel_ns=1000.0, x_ns=100.0, y_ns=100.0)
        totals = {r["mechanism"]: r["total_ns"] for r in result.rows}
        assert totals["m2func"] == 1200.0
        assert totals["cxl_io_rb"] == 1800.0


class TestFig11bDriver:
    def test_fine_grained_gains_most(self):
        result = run_fig11b()
        rows = {r["workload"]: r for r in result.rows}
        assert rows["KVS_A"]["vs_rb"] > rows["SPMV"]["vs_rb"]


class TestFig12Helpers:
    def test_inflation_only_touches_bodies(self):
        source = ".init\nret\n.body\nret\n.final\nret"
        inflated = _inflate_addressing(source)
        assert inflated.count("add x0, x0, x0") == 4
        from repro.isa.assembler import assemble_kernel
        kernel = assemble_kernel(inflated)
        assert kernel.initializer is not None
        assert len(kernel.bodies[0]) == 5

    def test_static_savings_in_paper_band(self):
        result = static_instruction_savings()
        for row in result.rows:
            assert 0.0 < row["reduction"] < 0.4

    def test_inflated_kernels_still_assemble_and_run(self):
        import numpy as np
        from repro.isa.assembler import assemble_kernel
        from repro.kernels.vecadd import VECADD
        from repro.host.api import pack_args
        from repro.workloads.base import make_platform

        platform = make_platform()
        runtime = platform.runtime
        n = 256
        a = np.arange(n, dtype=np.int64)
        addr_a = runtime.alloc_array(a)
        addr_b = runtime.alloc_array(a)
        addr_c = runtime.alloc(n * 8)
        runtime.run_kernel(_inflate_addressing(VECADD), addr_a,
                           addr_a + n * 8, args=pack_args(addr_b, addr_c))
        assert np.array_equal(runtime.read_array(addr_c, np.int64, n), 2 * a)


class TestFig14bDriver:
    def test_speedup_monotone_in_memories(self):
        result = run_fig14b()
        speedups = result.column("speedup")
        assert speedups == sorted(speedups)
        assert speedups[-1] > 6.0


class TestServingDriver:
    def test_sweep_reports_per_tenant_slo_and_p99(self):
        from repro.experiments.serving import run_serving

        result = run_serving(requests=12)
        combos = {(r["scheduler"], r["max_batch"]) for r in result.rows}
        assert combos == {("fifo", 1), ("fifo", 8), ("wfq", 1), ("wfq", 8)}
        tenant_rows = [r for r in result.rows if r["tenant"] != "(aggregate)"]
        assert all(r["correct"] for r in result.rows)
        assert all(r["p99_ns"] >= r["p50_ns"] >= 0 for r in tenant_rows)
        assert all(0.0 <= r["slo_att"] <= 1.0 for r in tenant_rows)
        # batching actually batched the batchable tenants somewhere
        assert any(r["mean_batch"] > 1.0 for r in tenant_rows
                   if r["max_batch"] == 8)
