"""Tests for the sparse physical memory backing store."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryError_
from repro.mem.physical import PAGE_SIZE, PhysicalMemory


class TestRawBytes:
    def test_roundtrip(self):
        mem = PhysicalMemory()
        mem.write_bytes(0x1000, b"hello")
        assert mem.read_bytes(0x1000, 5) == b"hello"

    def test_unwritten_reads_zero(self):
        assert PhysicalMemory().read_bytes(0x5000, 8) == b"\0" * 8

    def test_page_crossing_write_read(self):
        mem = PhysicalMemory()
        addr = PAGE_SIZE - 3
        mem.write_bytes(addr, b"abcdef")
        assert mem.read_bytes(addr, 6) == b"abcdef"

    def test_capacity_enforced(self):
        mem = PhysicalMemory(capacity_bytes=0x100)
        with pytest.raises(MemoryError_):
            mem.write_bytes(0xF8, b"123456789")
        with pytest.raises(MemoryError_):
            mem.read_bytes(0x100, 1)

    def test_negative_address_rejected(self):
        with pytest.raises(MemoryError_):
            PhysicalMemory().read_bytes(-1, 4)

    @given(st.integers(min_value=0, max_value=1 << 20),
           st.binary(min_size=1, max_size=256))
    def test_roundtrip_property(self, addr, data):
        mem = PhysicalMemory()
        mem.write_bytes(addr, data)
        assert mem.read_bytes(addr, len(data)) == data

    @given(st.integers(min_value=0, max_value=PAGE_SIZE * 3),
           st.binary(min_size=1, max_size=64),
           st.binary(min_size=1, max_size=64))
    def test_adjacent_writes_do_not_clobber(self, addr, left, right):
        mem = PhysicalMemory()
        mem.write_bytes(addr, left)
        mem.write_bytes(addr + len(left), right)
        assert mem.read_bytes(addr, len(left)) == left
        assert mem.read_bytes(addr + len(left), len(right)) == right


class TestTypedAccess:
    @pytest.mark.parametrize("writer,reader,value", [
        ("write_u8", "read_u8", 0xAB),
        ("write_u16", "read_u16", 0xBEEF),
        ("write_u32", "read_u32", 0xDEADBEEF),
        ("write_u64", "read_u64", 0x0123456789ABCDEF),
        ("write_i32", "read_i32", -123456),
        ("write_i64", "read_i64", -(1 << 40)),
    ])
    def test_integer_roundtrip(self, writer, reader, value):
        mem = PhysicalMemory()
        getattr(mem, writer)(0x100, value)
        assert getattr(mem, reader)(0x100) == value

    def test_float_roundtrip(self):
        mem = PhysicalMemory()
        mem.write_f32(0x10, 1.5)
        mem.write_f64(0x20, -2.25)
        assert mem.read_f32(0x10) == 1.5
        assert mem.read_f64(0x20) == -2.25

    def test_unsigned_wrap(self):
        mem = PhysicalMemory()
        mem.write_u8(0x0, 0x1FF)
        assert mem.read_u8(0x0) == 0xFF

    def test_signed_reads(self):
        mem = PhysicalMemory()
        mem.write_u8(0x0, 0xFF)
        assert mem.read_i8(0x0) == -1
        mem.write_u16(0x2, 0x8000)
        assert mem.read_i16(0x2) == -(1 << 15)

    def test_little_endian_layout(self):
        mem = PhysicalMemory()
        mem.write_u32(0x0, 0x04030201)
        assert mem.read_bytes(0x0, 4) == b"\x01\x02\x03\x04"


class TestNumpyAccess:
    def test_array_roundtrip(self):
        mem = PhysicalMemory()
        array = np.arange(100, dtype=np.int64)
        written = mem.store_array(0x2000, array)
        assert written == 800
        out = mem.load_array(0x2000, np.int64, 100)
        assert np.array_equal(out, array)

    def test_float32_array(self):
        mem = PhysicalMemory()
        array = np.linspace(0, 1, 33, dtype=np.float32)
        mem.store_array(0x40, array)
        assert np.allclose(mem.load_array(0x40, np.float32, 33), array)

    def test_resident_bytes_sparse(self):
        mem = PhysicalMemory()
        mem.write_u8(0, 1)
        mem.write_u8(100 * PAGE_SIZE, 1)
        assert mem.resident_bytes == 2 * PAGE_SIZE
