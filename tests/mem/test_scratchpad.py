"""Tests for the NDP-unit scratchpad."""

import pytest

from repro.errors import MemoryError_
from repro.mem.scratchpad import SCRATCHPAD_VBASE, Scratchpad


@pytest.fixture
def spad():
    return Scratchpad(size_bytes=4096)


class TestReadWrite:
    def test_roundtrip(self, spad):
        spad.write(SCRATCHPAD_VBASE + 16, b"abcd")
        assert spad.read(SCRATCHPAD_VBASE + 16, 4) == b"abcd"

    def test_contains(self, spad):
        assert spad.contains(SCRATCHPAD_VBASE)
        assert spad.contains(SCRATCHPAD_VBASE + 4095)
        assert not spad.contains(SCRATCHPAD_VBASE + 4096)
        assert not spad.contains(SCRATCHPAD_VBASE - 1)

    def test_out_of_window_rejected(self, spad):
        with pytest.raises(MemoryError_):
            spad.read(SCRATCHPAD_VBASE + 4090, 8)
        with pytest.raises(MemoryError_):
            spad.write(SCRATCHPAD_VBASE - 4, b"1234")

    def test_clear(self, spad):
        spad.write(SCRATCHPAD_VBASE, b"\xff" * 8)
        spad.clear()
        assert spad.read(SCRATCHPAD_VBASE, 8) == b"\0" * 8

    def test_traffic_stats(self, spad):
        spad.write(SCRATCHPAD_VBASE, b"12345678")
        spad.read(SCRATCHPAD_VBASE, 8)
        assert spad.stats.get("scratchpad.bytes") == 16


class TestAtomics:
    def test_amoadd_returns_old(self, spad):
        addr = SCRATCHPAD_VBASE + 64
        assert spad.amo("add", addr, 5, size=8) == 0
        assert spad.amo("add", addr, 3, size=8) == 5
        assert spad.amo("add", addr, 0, size=8) == 8

    def test_amoswap(self, spad):
        addr = SCRATCHPAD_VBASE
        spad.amo("swap", addr, 42, size=8)
        assert spad.amo("swap", addr, 7, size=8) == 42

    @pytest.mark.parametrize("op,start,operand,expected", [
        ("min", 10, 3, 3), ("min", 3, 10, 3),
        ("max", 10, 3, 10), ("max", 3, 10, 10),
        ("and", 0b1100, 0b1010, 0b1000),
        ("or", 0b1100, 0b1010, 0b1110),
        ("xor", 0b1100, 0b1010, 0b0110),
    ])
    def test_amo_ops(self, spad, op, start, operand, expected):
        addr = SCRATCHPAD_VBASE + 8
        spad.amo("swap", addr, start, size=8)
        spad.amo(op, addr, operand, size=8)
        assert spad.amo("add", addr, 0, size=8) == expected

    def test_float_amoadd(self, spad):
        addr = SCRATCHPAD_VBASE + 32
        spad.amo("add", addr, 1.5, size=8, is_float=True)
        old = spad.amo("add", addr, 2.25, size=8, is_float=True)
        assert old == pytest.approx(1.5)
        assert spad.amo("add", addr, 0.0, size=8, is_float=True) == pytest.approx(3.75)

    def test_32bit_atomics(self, spad):
        addr = SCRATCHPAD_VBASE + 4
        spad.amo("add", addr, 100, size=4)
        assert spad.amo("add", addr, 0, size=4) == 100

    def test_unknown_op_rejected(self, spad):
        with pytest.raises(MemoryError_):
            spad.amo("nand", SCRATCHPAD_VBASE, 1, size=8)
