"""Bulk charge paths vs their scalar references.

The vectorized `access_batch` APIs must reproduce the per-access loops
they replace: same hit/miss/eviction classification and stats for the
sector cache, same row classification, stats and bank/bus state for the
DRAM model (timing to FP noise), and identical virtual-time evolution for
the servers.
"""

import numpy as np
import pytest

from repro.config import CacheConfig, lpddr5_cxl_dram, memory_side_l2_config
from repro.mem.cache import SectorCache
from repro.mem.dram import DRAMModel
from repro.sim.engine import BandwidthServer, IssueServer, virtual_queue_finish
from repro.sim.stats import StatsRegistry


def _cache_pair(cfg):
    s1, s2 = StatsRegistry(), StatsRegistry()
    return (SectorCache(cfg, s1, "l2", write_allocate=True, write_back=True),
            SectorCache(cfg, s2, "l2", write_allocate=True, write_back=True),
            s1, s2)


def _drive_scalar(cache, addrs, writes):
    fills, wbs = [], []
    for k, (a, w) in enumerate(zip(addrs, writes)):
        r = cache.access(int(a), cache.config.sector_bytes, bool(w))
        fills.extend(s for s, _ in r.missing_sectors)
        wbs.extend((k, s) for s, _ in r.writebacks)
    return fills, wbs


class TestSectorCacheBatch:
    def test_cold_streaming_matches_scalar(self):
        cfg = memory_side_l2_config()
        c1, c2, s1, s2 = _cache_pair(cfg)
        addrs = (np.arange(5000) * 32).astype(np.int64)
        writes = np.zeros(5000, dtype=bool)
        writes[::3] = True
        fills_ref, wb_ref = _drive_scalar(c1, addrs, writes)
        res = c2.access_batch(addrs, writes)
        assert addrs[res.fill_idx].tolist() == fills_ref
        assert wb_ref == []
        assert res.wb_addrs.size == 0
        assert s1.counters("l2") == s2.counters("l2")

    def test_random_reuse_matches_scalar(self):
        cfg = memory_side_l2_config()
        c1, c2, s1, s2 = _cache_pair(cfg)
        gen = np.random.default_rng(7)
        addrs = (gen.integers(0, 2000, 8000) * 32).astype(np.int64)
        writes = gen.random(8000) < 0.4
        fills_ref, wb_ref = _drive_scalar(c1, addrs, writes)
        res = c2.access_batch(addrs, writes)
        assert addrs[res.fill_idx].tolist() == fills_ref
        assert s1.counters("l2") == s2.counters("l2")
        assert c1.resident_lines() == c2.resident_lines()

    def test_capacity_overflow_matches_scalar(self):
        small = CacheConfig("t", 16 * 1024, 4, 128, 32, 1.0)
        c1, c2, s1, s2 = _cache_pair(small)
        addrs = (np.arange(4000) * 32).astype(np.int64)
        writes = np.zeros(4000, dtype=bool)
        writes[1::2] = True
        fills_ref, wb_ref = _drive_scalar(c1, addrs, writes)
        res = c2.access_batch(addrs, writes)
        assert addrs[res.fill_idx].tolist() == fills_ref
        # writeback events match as (position, sector) multisets: the
        # batch path groups victims per set before emitting
        got = sorted(zip(res.wb_idx.tolist(), res.wb_addrs.tolist()))
        assert sorted(wb_ref) == got
        assert s1.counters("l2") == s2.counters("l2")
        assert c1.resident_lines() == c2.resident_lines()

    def test_state_carries_across_batches(self):
        cfg = memory_side_l2_config()
        c1, c2, s1, s2 = _cache_pair(cfg)
        addrs = (np.arange(3000) * 32).astype(np.int64)
        reads = np.zeros(3000, dtype=bool)
        _drive_scalar(c1, addrs, reads)
        c2.access_batch(addrs, reads)
        # second pass re-reads everything: all hits on both paths
        fills_ref, _ = _drive_scalar(c1, addrs, reads)
        res = c2.access_batch(addrs, reads)
        assert fills_ref == []
        assert res.fill_idx.size == 0
        assert s1.counters("l2") == s2.counters("l2")

    def test_rejects_write_through_configs(self):
        cfg = memory_side_l2_config()
        cache = SectorCache(cfg, StatsRegistry(), "l1",
                            write_allocate=False, write_back=False)
        with pytest.raises(NotImplementedError):
            cache.access_batch(np.zeros(1, dtype=np.int64),
                               np.zeros(1, dtype=bool))


class TestDRAMBatch:
    def test_matches_scalar_reference(self):
        cfg = lpddr5_cxl_dram()
        gen = np.random.default_rng(0)
        addrs = (gen.integers(0, (1 << 22) // 32, 5000) * 32).astype(np.int64)
        arrivals = np.cumsum(gen.uniform(0.5, 4.0, 5000))
        writes = gen.random(5000) < 0.3
        s1, s2 = StatsRegistry(), StatsRegistry()
        d1, d2 = DRAMModel(cfg, s1), DRAMModel(cfg, s2)
        ref = np.array([
            d1.access(int(a), 32, float(t), bool(w))
            for a, t, w in zip(addrs, arrivals, writes)
        ])
        got = d2.access_batch(addrs, 32, arrivals, writes)
        assert got == pytest.approx(ref, rel=1e-9)
        assert s1.counters("dram") == s2.counters("dram")
        for ch in range(cfg.channels):
            for bk in range(cfg.banks_per_channel):
                b1, b2 = d1._banks[ch][bk], d2._banks[ch][bk]
                assert b1.open_row == b2.open_row
                assert b1.ready_ns == pytest.approx(b2.ready_ns, abs=1e-6)

    def test_state_carries_into_scalar_path(self):
        cfg = lpddr5_cxl_dram()
        d = DRAMModel(cfg, StatsRegistry())
        addrs = (np.arange(256) * 32).astype(np.int64)
        d.access_batch(addrs, 32, np.full(256, 10.0), np.zeros(256, bool))
        # the same sector again, later: its row must still be open
        before = d.stats.get("dram.row_hits") if hasattr(d, "stats") else 0
        d.access(int(addrs[0]), 32, 1e6, False)
        assert d.stats.get("dram.row_hits") >= before


class TestCoherenceBatch:
    def test_batch_bi_count_matches_scalar(self):
        # two 32 B sectors share one 64 B host line: the scalar loop
        # invalidates it once; the batch path must not double-charge
        from repro.config import CXLConfig
        from repro.cxl.hdm import HDMCoherence
        from repro.cxl.link import CXLLink

        addrs = np.array([0, 32, 64, 96], dtype=np.int64)
        counts = {}
        for label in ("scalar", "batch"):
            stats = StatsRegistry()
            coherence = HDMCoherence(CXLLink(CXLConfig(), stats),
                                     dirty_fraction=0.9, stats=stats)
            if label == "scalar":
                now = 0.0
                for a in addrs:
                    coherence.access(int(a), 32, now)
            else:
                coherence.access_batch(addrs, 32, np.zeros(4))
            counts[label] = stats.get("hdm.back_invalidations")
        assert counts["scalar"] == counts["batch"]


class TestServerBatch:
    def test_bandwidth_charge_batch_matches_transfer_loop(self):
        gen = np.random.default_rng(3)
        arrivals = np.cumsum(gen.uniform(0.0, 2.0, 1000))
        sizes = gen.integers(32, 512, 1000)
        a, b = BandwidthServer(64.0), BandwidthServer(64.0)
        ref = [a.transfer(float(t), int(s)) for t, s in zip(arrivals, sizes)]
        got = b.charge_batch(arrivals, sizes)
        assert got == pytest.approx(np.array(ref), rel=1e-12)
        assert a.bytes_transferred == b.bytes_transferred
        assert a.occupancy_end() == pytest.approx(b.occupancy_end())

    def test_issue_service_batch_matches_issue_loop(self):
        a, b = IssueServer(4, 0.5), IssueServer(4, 0.5)
        for _ in range(37):
            a.issue(10.0)
        finish = b.service_batch(10.0, 37)
        assert a.busy_until == pytest.approx(b.busy_until)
        assert finish == pytest.approx(a.busy_until)
        assert a.ops_issued == b.ops_issued

    def test_virtual_queue_finish_closed_form(self):
        arrivals = np.array([0.0, 1.0, 10.0])
        costs = np.array([4.0, 4.0, 4.0])
        # 0->4, queued 4->8, idle gap then 10->14
        assert virtual_queue_finish(arrivals, costs).tolist() == [4, 8, 14]
        assert virtual_queue_finish(arrivals, costs, busy_until=20.0)[
            0] == pytest.approx(24.0)
