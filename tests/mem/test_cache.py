"""Tests for the sector cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.mem.cache import SectorCache
from repro.sim.stats import StatsRegistry


def small_cache(write_allocate=True, write_back=True) -> SectorCache:
    config = CacheConfig(name="t", size_bytes=4096, ways=2, line_bytes=128,
                         sector_bytes=32, hit_latency_ns=1.0)
    return SectorCache(config, StatsRegistry(), "t",
                       write_allocate=write_allocate, write_back=write_back)


class TestBasics:
    def test_first_read_misses_then_hits(self):
        cache = small_cache()
        miss = cache.access(0x100, 32, is_write=False)
        assert not miss.full_hit
        hit = cache.access(0x100, 32, is_write=False)
        assert hit.full_hit

    def test_sector_granularity(self):
        cache = small_cache()
        cache.access(0x100, 32, is_write=False)
        # a different sector of the same line still misses
        result = cache.access(0x120, 32, is_write=False)
        assert not result.full_hit

    def test_multi_sector_access(self):
        cache = small_cache()
        result = cache.access(0x100, 128, is_write=False)
        assert len(result.missing_sectors) == 4
        assert cache.access(0x100, 128, is_write=False).full_hit

    def test_unaligned_access_touches_both_sectors(self):
        cache = small_cache()
        result = cache.access(0x11E, 8, is_write=False)
        assert len(result.missing_sectors) == 2

    def test_lru_eviction(self):
        cache = small_cache()
        # set 0 lines: addresses that map to set 0 with 2 ways
        config = cache.config
        stride = config.num_sets * config.line_bytes
        a, b, c = 0, stride, 2 * stride
        cache.access(a, 32, is_write=False)
        cache.access(b, 32, is_write=False)
        cache.access(a, 32, is_write=False)      # touch a; b becomes LRU
        cache.access(c, 32, is_write=False)      # evicts b
        assert cache.access(a, 32, is_write=False).full_hit
        assert not cache.access(b, 32, is_write=False).full_hit

    def test_invalidate_all(self):
        cache = small_cache()
        cache.access(0, 32, is_write=False)
        dropped = cache.invalidate_all()
        assert dropped == 1
        assert not cache.access(0, 32, is_write=False).full_hit


class TestWritePolicies:
    def test_write_through_forwards_every_write(self):
        cache = small_cache(write_allocate=False, write_back=False)
        first = cache.access(0x40, 32, is_write=True)
        assert first.missing_sectors  # forwarded to next level
        cache.access(0x40, 32, is_write=False)   # still a read miss
        second = cache.access(0x40, 32, is_write=True)
        assert second.missing_sectors  # write-through even on hit

    def test_write_back_dirty_eviction(self):
        cache = small_cache(write_allocate=True, write_back=True)
        config = cache.config
        stride = config.num_sets * config.line_bytes
        cache.access(0, 32, is_write=True)          # dirty line in set 0
        cache.access(stride, 32, is_write=False)
        result = cache.access(2 * stride, 32, is_write=False)  # evict dirty
        assert result.writebacks == [(0, 32)]

    def test_clean_eviction_no_writeback(self):
        cache = small_cache()
        config = cache.config
        stride = config.num_sets * config.line_bytes
        cache.access(0, 32, is_write=False)
        cache.access(stride, 32, is_write=False)
        result = cache.access(2 * stride, 32, is_write=False)
        assert result.writebacks == []

    def test_write_hit_marks_dirty(self):
        cache = small_cache()
        cache.access(0, 32, is_write=False)
        cache.access(0, 32, is_write=True)   # hit, marks dirty
        config = cache.config
        stride = config.num_sets * config.line_bytes
        cache.access(stride, 32, is_write=False)
        result = cache.access(2 * stride, 32, is_write=False)
        assert (0, 32) in result.writebacks


class TestAccounting:
    def test_hit_rate(self):
        cache = small_cache()
        cache.access(0, 32, is_write=False)
        cache.access(0, 32, is_write=False)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_resident_lines_bounded(self):
        cache = small_cache()
        for i in range(1000):
            cache.access(i * 128, 32, is_write=False)
        max_lines = cache.config.num_sets * cache.config.ways
        assert cache.resident_lines() <= max_lines

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=1 << 16),
                              st.booleans()),
                    min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_capacity_invariant(self, accesses):
        cache = small_cache()
        for addr, is_write in accesses:
            cache.access(addr, 32, is_write)
        assert cache.resident_lines() <= cache.config.num_sets * cache.config.ways

    @given(st.lists(st.integers(min_value=0, max_value=1 << 14),
                    min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_immediate_rereference_always_hits(self, addresses):
        cache = small_cache()
        for addr in addresses:
            cache.access(addr, 32, is_write=False)
            assert cache.access(addr, 32, is_write=False).full_hit


class TestConfigValidation:
    def test_bad_geometry_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            CacheConfig(name="bad", size_bytes=1000, ways=3, line_bytes=128,
                        sector_bytes=32, hit_latency_ns=1.0)

    def test_sector_must_divide_line(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            CacheConfig(name="bad", size_bytes=4096, ways=2, line_bytes=128,
                        sector_bytes=48, hit_latency_ns=1.0)
