"""Tests for the banked DRAM timing model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import lpddr5_cxl_dram
from repro.mem.dram import DRAMModel
from repro.mem.layout import AddressLayout
from repro.sim.stats import StatsRegistry


@pytest.fixture
def dram():
    return DRAMModel(lpddr5_cxl_dram(), StatsRegistry())


class TestBasicTiming:
    def test_first_access_pays_activation(self, dram):
        timing = dram.config.timing
        done = dram.access(0, 32, 0.0, is_write=False)
        expected_min = timing.row_miss_ns
        assert done >= expected_min

    def test_row_hit_faster_than_miss(self, dram):
        first = dram.access(0, 32, 0.0, is_write=False)
        # same granule row: subsequent access should be a hit
        second = dram.access(0, 32, 1000.0, is_write=False) - 1000.0
        assert second < first

    def test_row_hit_counted(self, dram):
        dram.access(0, 32, 0.0, is_write=False)
        dram.access(0, 32, 1000.0, is_write=False)
        assert dram.stats.get("dram.row_hits") >= 1

    def test_conflict_slower_than_hit(self, dram):
        layout = dram.layout
        base = layout.coordinates(0)
        # find an address in the same channel+bank but a different row
        conflict_addr = None
        for addr in range(256, 1 << 24, 256):
            c = layout.coordinates(addr)
            if (c.channel, c.bank) == (base.channel, base.bank) and c.row != base.row:
                conflict_addr = addr
                break
        assert conflict_addr is not None
        dram.access(0, 32, 0.0, is_write=False)
        hit_time = dram.access(0, 32, 5000.0, is_write=False) - 5000.0
        conflict_time = dram.access(conflict_addr, 32, 10000.0,
                                    is_write=False) - 10000.0
        assert conflict_time > hit_time
        assert dram.stats.get("dram.row_conflicts") >= 1

    def test_multi_burst_access_spans_channels(self, dram):
        done = dram.access(0, 256, 0.0, is_write=False)
        # 8 bursts over (mostly) distinct channels should overlap heavily:
        # far less than 8 serialized accesses
        single = dram.access(1 << 20, 32, 10_000.0, is_write=False) - 10_000.0
        assert done < 8 * single


class TestBandwidth:
    def test_streaming_approaches_peak(self, dram):
        total_bytes = 0
        finish = 0.0
        for i in range(4096):
            addr = i * 32
            finish = max(finish, dram.access(addr, 32, 0.0, is_write=False))
            total_bytes += 32
        achieved = total_bytes / finish
        assert achieved > 0.7 * dram.peak_bw_bytes_per_ns

    def test_single_bank_stream_is_limited(self, dram):
        layout = dram.layout
        base = layout.coordinates(0)
        same_bank = [0]
        for addr in range(256, 1 << 26, 256):
            c = layout.coordinates(addr)
            if (c.channel, c.bank) == (base.channel, base.bank):
                same_bank.append(addr)
            if len(same_bank) >= 64:
                break
        finish = 0.0
        for addr in same_bank:
            finish = max(finish, dram.access(addr, 32, 0.0, is_write=False))
        achieved = len(same_bank) * 32 / finish
        assert achieved < 0.2 * dram.peak_bw_bytes_per_ns

    def test_utilization_accounting(self, dram):
        dram.access(0, 32, 0.0, is_write=True)
        assert dram.bytes_accessed() == 32
        assert 0 < dram.utilization(100.0) <= 1.0

    def test_reset(self, dram):
        dram.access(0, 32, 0.0, is_write=False)
        dram.reset()
        again = dram.access(0, 32, 0.0, is_write=False)
        assert again >= dram.config.timing.row_miss_ns


class TestMonotonicity:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=1 << 24),
                              st.floats(min_value=0, max_value=1e5)),
                    min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_completion_after_arrival(self, accesses):
        dram = DRAMModel(lpddr5_cxl_dram(), StatsRegistry())
        for addr, t in accesses:
            done = dram.access(addr, 32, t, is_write=False)
            assert done > t


class TestLayout:
    def test_coordinates_deterministic(self):
        layout = AddressLayout(lpddr5_cxl_dram())
        assert layout.coordinates(0x1234) == layout.coordinates(0x1234)

    def test_channels_spread(self):
        layout = AddressLayout(lpddr5_cxl_dram())
        channels = {layout.coordinates(i * 256).channel for i in range(256)}
        assert len(channels) == layout.config.channels

    def test_strided_pattern_spreads(self):
        """Hashed interleaving avoids channel camping on 8 KB strides."""
        layout = AddressLayout(lpddr5_cxl_dram())
        channels = [layout.coordinates(i * 8192).channel for i in range(64)]
        assert len(set(channels)) > 8

    def test_split_by_access_covers_range(self):
        layout = AddressLayout(lpddr5_cxl_dram())
        pieces = layout.split_by_access(100, 64)
        assert pieces[0][0] <= 100
        assert pieces[-1][0] + pieces[-1][1] >= 164
        assert all(size == 32 for _, size in pieces)

    @given(st.integers(min_value=0, max_value=1 << 30),
           st.integers(min_value=1, max_value=512))
    def test_split_by_granule_partitions(self, addr, size):
        layout = AddressLayout(lpddr5_cxl_dram())
        pieces = layout.split_by_granule(addr, size)
        assert sum(s for _, s in pieces) == size
        assert pieces[0][0] == addr
        for (a1, s1), (a2, _) in zip(pieces, pieces[1:]):
            assert a1 + s1 == a2
