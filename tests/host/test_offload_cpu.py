"""Tests for offload mechanisms and the CPU models."""

import numpy as np
import pytest

from repro.host.api import M2NDPRuntime, pack_args
from repro.host.cpu import CoreRequestPool, HostCPUModel, MemoryTarget
from repro.host.offload import (
    CXL_IO_ONE_WAY_NS,
    CXL_MEM_ONE_WAY_NS,
    make_offload_path,
    timeline,
)
from repro.kernels.vecadd import VECADD
from repro.ndp.device import M2NDPDevice
from repro.sim.engine import Simulator


class TestTimelines:
    def test_fig5_totals(self):
        z = 6_400.0
        assert timeline("m2func", z).total_ns == z + 2 * CXL_MEM_ONE_WAY_NS
        assert timeline("cxl_io_rb", z).total_ns == z + 8 * CXL_IO_ONE_WAY_NS
        assert timeline("cxl_io_dr", z).total_ns == z + 3 * CXL_IO_ONE_WAY_NS

    def test_m2func_has_lowest_overhead(self):
        z = 1000.0
        overheads = {m: timeline(m, z).overhead_ns
                     for m in ("m2func", "cxl_io_rb", "cxl_io_dr")}
        assert overheads["m2func"] < overheads["cxl_io_dr"] < overheads["cxl_io_rb"]

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError):
            timeline("smoke_signals", 100.0)
        with pytest.raises(ValueError):
            make_offload_path("smoke_signals")


def _vecadd_setup(n=256):
    sim = Simulator()
    device = M2NDPDevice(sim)
    runtime = M2NDPRuntime(device)
    a = np.arange(n, dtype=np.int64)
    addr_a = runtime.alloc_array(a)
    addr_b = runtime.alloc_array(a)
    addr_c = runtime.alloc(n * 8)
    kid = runtime.register_kernel(VECADD)
    return sim, runtime, kid, addr_a, addr_b, addr_c, n


class TestOffloadPaths:
    @pytest.mark.parametrize("mech", ["m2func", "cxl_io_rb", "cxl_io_dr"])
    def test_launch_completes(self, mech):
        sim, runtime, kid, addr_a, addr_b, addr_c, n = _vecadd_setup()
        path = make_offload_path(mech)
        done = []
        path.launch(runtime, kid, addr_a, addr_a + n * 8,
                    args=pack_args(addr_b, addr_c), at_ns=sim.now,
                    on_complete=lambda h: done.append(h.complete_ns))
        sim.run()
        assert len(done) == 1 and done[0] > 0

    def test_cxl_io_paths_slower_than_m2func(self):
        latencies = {}
        for mech in ("m2func", "cxl_io_rb", "cxl_io_dr"):
            sim, runtime, kid, addr_a, addr_b, addr_c, n = _vecadd_setup()
            path = make_offload_path(mech)
            start = sim.now
            done = []
            path.launch(runtime, kid, addr_a, addr_a + n * 8,
                        args=pack_args(addr_b, addr_c), at_ns=start,
                        on_complete=lambda h: done.append(h.complete_ns))
            sim.run()
            latencies[mech] = done[0] - start
        assert latencies["m2func"] < latencies["cxl_io_dr"]
        assert latencies["cxl_io_dr"] < latencies["cxl_io_rb"]

    def test_direct_mmio_serializes(self):
        """The register pair admits one kernel at a time (§II-C)."""
        sim, runtime, kid, addr_a, addr_b, addr_c, n = _vecadd_setup()
        path = make_offload_path("cxl_io_dr")
        completions = []
        for _ in range(3):
            path.launch(runtime, kid, addr_a, addr_a + n * 8,
                        args=pack_args(addr_b, addr_c), at_ns=0.0,
                        on_complete=lambda h: completions.append(h.complete_ns))
        sim.run()
        completions.sort()
        # each launch pays the full pre+kernel+post after the previous one
        gap = path.pre_ns + path.post_ns
        assert completions[1] - completions[0] >= gap
        assert completions[2] - completions[1] >= gap

    def test_ring_buffer_allows_concurrency(self):
        sim, runtime, kid, addr_a, addr_b, addr_c, n = _vecadd_setup()
        path = make_offload_path("cxl_io_rb")
        completions = []
        for _ in range(3):
            path.launch(runtime, kid, addr_a, addr_a + n * 8,
                        args=pack_args(addr_b, addr_c), at_ns=0.0,
                        on_complete=lambda h: completions.append(h.complete_ns))
        sim.run()
        completions.sort()
        # concurrent kernels overlap: spread far below serialized overhead
        assert completions[-1] - completions[0] < path.pre_ns + path.post_ns


class TestHostCPUModel:
    def test_single_core_mlp_limited(self):
        cpu = HostCPUModel()
        memory = MemoryTarget("cxl", 150.0, 64.0)
        bw = cpu.scan_bandwidth(memory, threads=1)
        assert bw == pytest.approx(10 * 64 / 150.0)

    def test_many_cores_hit_link_ceiling(self):
        cpu = HostCPUModel()
        memory = MemoryTarget("cxl", 150.0, 64.0)
        assert cpu.scan_bandwidth(memory) == pytest.approx(64.0)

    def test_scan_time_includes_compute(self):
        cpu = HostCPUModel()
        memory = MemoryTarget("cxl", 150.0, 64.0)
        fast = cpu.scan_time_ns(1 << 20, memory)
        slow = cpu.scan_time_ns(1 << 20, memory, compute_ns_per_byte=100.0)
        assert slow > fast

    def test_pointer_chase_serializes(self):
        cpu = HostCPUModel()
        memory = MemoryTarget("cxl", 150.0, 64.0)
        assert cpu.pointer_chase_ns(4, memory) == pytest.approx(600.0)

    def test_internal_memory_faster(self):
        cpu = HostCPUModel()
        cxl = MemoryTarget.cxl()
        internal = MemoryTarget.device_internal()
        assert cpu.scan_bandwidth(internal, threads=8) > cpu.scan_bandwidth(
            cxl, threads=8
        )


class TestCoreRequestPool:
    def test_parallel_service(self):
        sim = Simulator()
        pool = CoreRequestPool(sim, num_cores=4)
        done = [pool.submit(0.0, 100.0) for _ in range(4)]
        assert all(d == 100.0 for d in done)

    def test_queueing_when_saturated(self):
        sim = Simulator()
        pool = CoreRequestPool(sim, num_cores=1)
        first = pool.submit(0.0, 100.0)
        second = pool.submit(0.0, 100.0)
        assert (first, second) == (100.0, 200.0)

    def test_latency_distribution_records_queueing(self):
        sim = Simulator()
        pool = CoreRequestPool(sim, num_cores=1)
        pool.submit(0.0, 100.0)
        pool.submit(0.0, 100.0)
        assert pool.latencies.max == 200.0

    def test_callback_scheduled(self):
        sim = Simulator()
        pool = CoreRequestPool(sim, num_cores=1)
        seen = []
        pool.submit(5.0, 10.0, callback=lambda t: seen.append(t))
        sim.run()
        assert seen == [15.0]
