"""Tests for the GPU SM model, NSU baseline, and domain-specific PEs."""

import pytest

from repro.config import GPUConfig, SystemConfig, lpddr5_cxl_dram
from repro.host.dsa import ALL_PES, CMS, CXL_PNM, pe_for_workload
from repro.host.gpu import (
    GPUDevice,
    GPUKernelSpec,
    GPUMemorySystem,
    WarpProfile,
    make_gpu_baseline,
    make_gpu_ndp,
)
from repro.host.nsu import NSUModel, NSUWorkload
from repro.mem.dram import DRAMModel
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry


def uniform_spec(total_warps=64, warps_per_tb=4, instructions=40,
                 mem_ops=4, sectors=4, **kwargs) -> GPUKernelSpec:
    def profile(_):
        return WarpProfile(instructions=instructions,
                           mem_ops=[(sectors, False)] * mem_ops)

    return GPUKernelSpec(name="t", total_warps=total_warps,
                         warps_per_tb=warps_per_tb, warp_profile=profile,
                         **kwargs)


def run_kernel(device: GPUDevice, spec: GPUKernelSpec) -> float:
    result = device.launch(spec, at_ns=0.0)
    device.sim.run()
    return result.kernel_ns


class TestGPUDevice:
    def test_kernel_completes(self):
        sim = Simulator()
        gpu = make_gpu_ndp(sim, SystemConfig(), 8)
        assert run_kernel(gpu, uniform_spec()) > 0

    def test_more_sms_not_slower_for_wide_kernels(self):
        times = {}
        for sms in (8, 32):
            sim = Simulator()
            gpu = make_gpu_ndp(sim, SystemConfig(), sms)
            times[sms] = run_kernel(gpu, uniform_spec(total_warps=2048))
        assert times[32] <= times[8]

    def test_tb_granularity_limits_occupancy(self):
        """A straggler warp holds its whole TB's slots (§III-D A2)."""
        sim = Simulator()
        gpu = make_gpu_ndp(sim, SystemConfig(), 1)

        def skewed(warp):
            if warp % 8 == 0:
                return WarpProfile(instructions=4000, mem_ops=[(4, False)] * 40)
            return WarpProfile(instructions=10, mem_ops=[(4, False)])

        spec = GPUKernelSpec(name="skew", total_warps=256, warps_per_tb=8,
                             warp_profile=skewed)
        gpu.launch(spec, at_ns=0.0)
        sim.run()
        sm = gpu.sms[0]
        mean = sm.sampler.time_weighted_mean(0.0, sim.now)
        assert mean < 0.95   # slots wasted waiting for stragglers

    def test_shared_memory_limits_tbs(self):
        config = GPUConfig(num_sms=1)
        sim = Simulator()
        stats = StatsRegistry()
        dram = DRAMModel(lpddr5_cxl_dram(), stats)
        gpu = GPUDevice(sim, config, GPUMemorySystem(dram), stats)
        spec = uniform_spec(total_warps=64, warps_per_tb=4,
                            shared_mem_per_tb=config.shared_mem_bytes_per_sm)
        # only one TB fits at a time
        assert gpu.sms[0].can_host_tb(spec)
        gpu.sms[0].admit_tb(spec, 4, 0.0)
        assert not gpu.sms[0].can_host_tb(spec)

    def test_register_file_limits_warps(self):
        config = GPUConfig(num_sms=1)
        spec = uniform_spec(warps_per_tb=8, regs_per_thread=256)
        sim = Simulator()
        stats = StatsRegistry()
        dram = DRAMModel(lpddr5_cxl_dram(), stats)
        gpu = GPUDevice(sim, config, GPUMemorySystem(dram), stats)
        sm = gpu.sms[0]
        admitted = 0
        while sm.can_host_tb(spec):
            sm.admit_tb(spec, 8, 0.0)
            admitted += 1
        # 256 regs * 4 B * 256 threads = 256 KB per TB: exactly one fits
        assert admitted == 1

    def test_cxl_baseline_slower_than_internal(self):
        spec = uniform_spec(total_warps=512, mem_ops=16)
        sim1 = Simulator()
        baseline = make_gpu_baseline(sim1, SystemConfig())
        base_ns = run_kernel(baseline, spec)
        sim2 = Simulator()
        internal = make_gpu_ndp(sim2, SystemConfig(), 82, freq_ghz=1.695)
        internal_ns = run_kernel(internal, spec)
        assert base_ns > internal_ns

    def test_mlp_speeds_up_streaming(self):
        def spec_with_mlp(mlp):
            def profile(_):
                return WarpProfile(instructions=40,
                                   mem_ops=[(4, False)] * 16, mlp=mlp)
            return GPUKernelSpec(name="m", total_warps=16, warps_per_tb=4,
                                 warp_profile=profile)
        times = {}
        for mlp in (1, 8):
            sim = Simulator()
            gpu = make_gpu_ndp(sim, SystemConfig(), 8)
            times[mlp] = run_kernel(gpu, spec_with_mlp(mlp))
        assert times[8] < times[1]

    def test_fractional_sm_count(self):
        sim = Simulator()
        gpu = make_gpu_ndp(sim, SystemConfig(), 16.2)
        assert len(gpu.sms) == 16
        assert gpu.config.freq_ghz == pytest.approx(2.0 * 16.2 / 16)


class TestNSU:
    def test_command_traffic_dominates(self):
        nsu = NSUModel()
        # 1M accesses of 32 B: command bytes ≈ data bytes => link-bound
        workload = NSUWorkload(ndp_accesses=1 << 20,
                               read_bytes=32 << 20, result_bytes=0)
        runtime = nsu.runtime_ns(workload)
        link_time = (1 << 20) * 32 / 64.0
        assert runtime >= link_time

    def test_worse_than_internal_execution(self):
        nsu = NSUModel()
        workload = NSUWorkload(ndp_accesses=1 << 20,
                               read_bytes=32 << 20, result_bytes=0)
        internal_only = (32 << 20) / 409.6
        assert nsu.runtime_ns(workload) > internal_only


class TestDomainSpecificPEs:
    def test_catalog_covers_paper_designs(self):
        names = {pe.name for pe in ALL_PES}
        assert names == {"CXL-ANNS", "CMS", "RecNMP", "CXL-PNM"}

    def test_workload_dispatch(self):
        assert CMS in pe_for_workload("knn")
        assert CXL_PNM in pe_for_workload("llm")
        assert pe_for_workload("unknown-thing") == []

    def test_runtime_scales_with_bytes(self):
        one = CMS.runtime_ns(1 << 20, 409.6)
        two = CMS.runtime_ns(2 << 20, 409.6)
        assert two == pytest.approx(2 * one)

    def test_efficiencies_below_unity(self):
        assert all(0.5 < pe.streaming_efficiency <= 1.0 for pe in ALL_PES)
