"""Detailed tests of the host runtime API and allocator."""

import numpy as np
import pytest

from repro.errors import LaunchError, SimulationError
from repro.host.api import (
    HDM_HEAP_BASE,
    M2FUNC_REGION_BYTES,
    M2NDPRuntime,
    pack_args,
)
from repro.ndp.device import M2NDPDevice
from repro.sim.engine import Simulator


@pytest.fixture
def runtime():
    sim = Simulator()
    return M2NDPRuntime(M2NDPDevice(sim))


class TestPackArgs:
    def test_layout(self):
        data = pack_args(1, 2)
        assert data == (1).to_bytes(8, "little") + (2).to_bytes(8, "little")

    def test_wraps_to_u64(self):
        data = pack_args(-1)
        assert data == b"\xff" * 8

    def test_empty(self):
        assert pack_args() == b""


class TestAllocator:
    def test_alignment(self, runtime):
        addr = runtime.alloc(100, align=4096)
        assert addr % 4096 == 0

    def test_allocations_do_not_overlap(self, runtime):
        a = runtime.alloc(5000)
        b = runtime.alloc(5000)
        assert b >= a + 5000

    def test_heap_starts_above_reserved_regions(self, runtime):
        addr = runtime.alloc(64)
        assert addr >= HDM_HEAP_BASE

    def test_identity_mapping_installed(self, runtime):
        addr = runtime.alloc(4096)
        table = runtime.device.page_table(runtime.asid)
        assert table.lookup(addr >> 12).ppn == addr >> 12

    def test_dram_tlb_prewarmed(self, runtime):
        addr = runtime.alloc(8192)
        table = runtime.device.page_table(runtime.asid)
        _, cold = runtime.device.dram_tlb.lookup(runtime.asid, addr >> 12,
                                                 table)
        assert cold is False

    def test_zero_size_rejected(self, runtime):
        with pytest.raises(LaunchError):
            runtime.alloc(0)

    def test_array_roundtrip(self, runtime):
        data = np.linspace(0, 1, 777, dtype=np.float64)
        addr = runtime.alloc_array(data)
        assert np.array_equal(runtime.read_array(addr, np.float64, 777), data)


class TestM2FuncRegion:
    def test_region_registered_in_filter(self, runtime):
        entry = runtime.device.packet_filter.lookup_asid(runtime.asid)
        assert entry is not None
        assert entry.bound - entry.base == M2FUNC_REGION_BYTES

    def test_two_processes_get_disjoint_regions(self):
        sim = Simulator()
        device = M2NDPDevice(sim)
        r1 = M2NDPRuntime(device, asid=1)
        r2 = M2NDPRuntime(device, asid=2)
        e1, e2 = r1.filter_entry, r2.filter_entry
        assert e1.bound <= e2.base or e2.bound <= e1.base

    def test_function_addresses_strided_32b(self, runtime):
        assert runtime.func_addr(1) - runtime.func_addr(0) == 32

    def test_call_async_resolves_via_sim(self, runtime):
        call = runtime.call_async(3, pack_args(999))   # poll unknown id
        assert not call.done
        while not call.done:
            assert runtime.sim.step()
        assert call.value is not None and call.value < 0

    def test_call_timing_orders_write_before_read(self, runtime):
        call = runtime.call_async(3, pack_args(1))
        while not call.done:
            runtime.sim.step()
        assert call.ack_ns is not None
        assert call.done_ns > call.ack_ns

    def test_deadlock_detection(self, runtime):
        from repro.host.api import M2Call

        orphan = M2Call(func=0, issued_ns=0.0)
        with pytest.raises(SimulationError):
            runtime._await(orphan)
