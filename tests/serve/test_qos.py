"""Scheduler fairness invariants and queue/batcher mechanics.

The three serving-fairness invariants from the issue checklist run at the
engine level (real cluster launches, real queueing):

* two equal-weight tenants get served shares within 10% of each other;
* the batch class is starvation-free under interactive overload;
* admission-control shed accounting sums back to the offered load.
"""

import math

import pytest

from repro.cluster import make_cluster_platform
from repro.errors import ConfigError
from repro.serve import (
    ArrivalSpec,
    BatchPolicy,
    DynamicBatcher,
    QoSScheduler,
    Request,
    RequestQueue,
    ServingEngine,
    TenantSpec,
)


def _request(tenant, seq, arrival=0.0, qos="interactive",
             deadline=math.inf, slice_lo=0, slice_hi=1, index=0):
    return Request(tenant=tenant, index=index, seq=seq, arrival_ns=arrival,
                   qos_class=qos, deadline_ns=deadline,
                   slice_lo=slice_lo, slice_hi=slice_hi)


class TestRequestQueue:
    def test_deadline_order_within_class(self):
        queue = RequestQueue()
        queue.push(_request("t", 0, deadline=300.0))
        queue.push(_request("t", 1, deadline=100.0))
        queue.push(_request("t", 2, deadline=200.0))
        deadlines = [queue.pop("t").deadline_ns for _ in range(3)]
        assert deadlines == [100.0, 200.0, 300.0]

    def test_interactive_before_batch(self):
        queue = RequestQueue()
        queue.push(_request("t", 0, qos="batch", deadline=1.0))
        queue.push(_request("t", 1, qos="interactive"))
        assert queue.pop("t").qos_class == "interactive"

    def test_head_run_preserves_queue(self):
        queue = RequestQueue()
        for i in range(4):
            queue.push(_request("t", i, slice_lo=i, slice_hi=i + 1))
        assert [r.seq for r in queue.head_run("t", 3)] == [0, 1, 2]
        assert queue.depth("t") == 4


class TestSchedulerPolicies:
    def test_fifo_picks_global_arrival_order(self):
        scheduler = QoSScheduler(policy="fifo")
        heads = {"a": _request("a", 5), "b": _request("b", 2)}
        assert scheduler.pick(heads, now_ns=0.0) == "b"

    def test_wfq_alternates_equal_weights(self):
        scheduler = QoSScheduler(policy="wfq",
                                 weights={"a": 1.0, "b": 1.0})
        heads = {"a": _request("a", 0), "b": _request("b", 1)}
        picks = []
        for _ in range(6):
            choice = scheduler.pick(heads, now_ns=0.0)
            scheduler.charge(choice, 1.0)
            picks.append(choice)
        assert picks.count("a") == 3 and picks.count("b") == 3

    def test_wfq_honors_weights(self):
        scheduler = QoSScheduler(policy="wfq",
                                 weights={"heavy": 3.0, "light": 1.0})
        heads = {"heavy": _request("heavy", 0), "light": _request("light", 1)}
        picks = []
        for _ in range(8):
            choice = scheduler.pick(heads, now_ns=0.0)
            scheduler.charge(choice, 1.0)
            picks.append(choice)
        assert picks.count("heavy") == 6 and picks.count("light") == 2

    def test_interactive_band_preempts_batch(self):
        scheduler = QoSScheduler(policy="wfq",
                                 weights={"i": 1.0, "b": 1.0})
        heads = {"i": _request("i", 1, qos="interactive"),
                 "b": _request("b", 0, qos="batch")}
        assert scheduler.pick(heads, now_ns=0.0) == "i"

    def test_starved_batch_promotes(self):
        scheduler = QoSScheduler(policy="wfq", weights={"i": 1.0, "b": 1.0},
                                 starvation_ns=1_000.0)
        heads = {"i": _request("i", 1, qos="interactive", arrival=5_000.0),
                 "b": _request("b", 0, qos="batch", arrival=0.0)}
        # batch head has aged past the threshold: same band, and its
        # earlier virtual start tag (both zero) ties -> deadline, then name
        choice = scheduler.pick(heads, now_ns=5_000.0)
        scheduler.charge(choice, 1.0)
        assert scheduler.pick(heads, now_ns=5_000.0) != choice

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigError):
            QoSScheduler(policy="lottery")

    def test_bad_weight_rejected(self):
        with pytest.raises(ConfigError):
            QoSScheduler(policy="wfq", weights={"t": 0.0})


class TestDynamicBatcher:
    def _queue_with(self, slices):
        queue = RequestQueue()
        for i, (lo, hi) in enumerate(slices):
            queue.push(_request("t", i, slice_lo=lo, slice_hi=hi, index=i))
        return queue

    def test_contiguous_run_merges(self):
        queue = self._queue_with([(0, 1), (1, 2), (2, 3)])
        batcher = DynamicBatcher(BatchPolicy(max_batch=8, max_wait_ns=0.0))
        batch = batcher.take(queue, "t", batchable=True)
        assert batch.size == 3
        assert (batch.slice_lo, batch.slice_hi) == (0, 3)
        assert queue.depth("t") == 0

    def test_duplicate_slice_absorbed(self):
        queue = self._queue_with([(0, 1), (0, 1), (1, 2)])
        batcher = DynamicBatcher(BatchPolicy(max_batch=8, max_wait_ns=0.0))
        batch = batcher.take(queue, "t", batchable=True)
        assert batch.size == 3
        assert (batch.slice_lo, batch.slice_hi) == (0, 2)

    def test_gap_stops_the_run(self):
        queue = self._queue_with([(0, 1), (5, 6), (1, 2)])
        batcher = DynamicBatcher(BatchPolicy(max_batch=8, max_wait_ns=0.0))
        batch = batcher.take(queue, "t", batchable=True)
        assert batch.size == 1
        assert queue.depth("t") == 2

    def test_max_batch_respected(self):
        queue = self._queue_with([(i, i + 1) for i in range(10)])
        batcher = DynamicBatcher(BatchPolicy(max_batch=4, max_wait_ns=0.0))
        assert batcher.take(queue, "t", batchable=True).size == 4

    def test_unbatchable_always_single(self):
        queue = self._queue_with([(0, 1), (1, 2)])
        batcher = DynamicBatcher(BatchPolicy(max_batch=8, max_wait_ns=0.0))
        assert batcher.take(queue, "t", batchable=False).size == 1

    def test_hold_waits_for_batchmates(self):
        queue = self._queue_with([(0, 1)])
        batcher = DynamicBatcher(BatchPolicy(max_batch=4, max_wait_ns=500.0))
        flush_at = batcher.should_hold(queue, "t", batchable=True,
                                       now_ns=100.0, more_arrivals=True)
        assert flush_at == 500.0      # head arrived at 0.0

    def test_no_hold_when_stream_exhausted(self):
        queue = self._queue_with([(0, 1)])
        batcher = DynamicBatcher(BatchPolicy(max_batch=4, max_wait_ns=500.0))
        assert batcher.should_hold(queue, "t", batchable=True,
                                   now_ns=100.0, more_arrivals=False) is None

    def test_no_hold_when_full(self):
        queue = self._queue_with([(i, i + 1) for i in range(4)])
        batcher = DynamicBatcher(BatchPolicy(max_batch=4, max_wait_ns=500.0))
        assert batcher.should_hold(queue, "t", batchable=True,
                                   now_ns=100.0, more_arrivals=True) is None

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigError):
            BatchPolicy(max_batch=0)


# ---------------------------------------------------------------------------
# engine-level fairness invariants (the issue checklist)
# ---------------------------------------------------------------------------


def _fair_engine(scheduler):
    platform = make_cluster_platform(num_devices=1, backend="batched")
    # both tenants dump their full demand at t=0: only the scheduler
    # decides who gets served while the backlog drains
    tenants = [
        TenantSpec(name, "vecadd",
                   arrivals=ArrivalSpec("trace", times=(0.0,) * 60),
                   size=1 << 10, slices=6, weight=1.0)
        for name in ("alice", "bob")
    ]
    return ServingEngine(platform, tenants, scheduler=scheduler,
                         batch=BatchPolicy(max_batch=1),
                         inflight_per_device=1)


class TestFairShare:
    def test_equal_weight_tenants_within_10_percent(self):
        report = _fair_engine("wfq").run()
        assert report.correct
        # completion order while both backlogs drain: share of the first
        # half must be fair, not just the final totals
        completions = sorted(
            (when, t.name) for t in report.tenants
            for when in t.completion_times
        )
        half = completions[:len(completions) // 2]
        alice = sum(1 for _, name in half if name == "alice")
        share = alice / len(half)
        assert 0.45 <= share <= 0.55, f"unfair share {share:.2f}"

    def test_fifo_baseline_is_unfair_here(self):
        # the same all-at-once backlog under FIFO serves one tenant first —
        # documents that the WFQ result above is the scheduler's doing
        report = _fair_engine("fifo").run()
        completions = sorted(
            (when, t.name) for t in report.tenants
            for when in t.completion_times
        )
        half = completions[:len(completions) // 2]
        alice = sum(1 for _, name in half if name == "alice")
        share = alice / len(half)
        assert share > 0.9 or share < 0.1


class TestStarvationFreedom:
    def test_batch_class_served_under_interactive_overload(self):
        platform = make_cluster_platform(num_devices=1, backend="batched")
        tenants = [
            TenantSpec("frontend", "vecadd",
                       arrivals=ArrivalSpec("poisson", rate_rps=2e7,
                                            requests=150),
                       qos_class="interactive", size=1 << 10, slices=6),
            TenantSpec("nightly", "vecadd",
                       arrivals=ArrivalSpec("trace", times=(0.0,) * 8),
                       qos_class="batch", size=1 << 10, slices=4),
        ]
        engine = ServingEngine(platform, tenants, scheduler="wfq",
                               batch=BatchPolicy(max_batch=1),
                               inflight_per_device=1,
                               starvation_ns=20_000.0)
        report = engine.run()
        assert report.correct
        nightly = report.tenant("nightly")
        frontend = report.tenant("frontend")
        assert nightly.served == 8
        # strict priority would park the batch tenant until the interactive
        # stream drained; aging must finish it strictly earlier
        assert (max(nightly.completion_times)
                < max(frontend.completion_times))
        # and its waits stay bounded by promotion, not by the whole run
        assert nightly.p99_ns < report.span_ns / 2


class TestShedAccounting:
    def test_sheds_and_expiries_sum_to_offered(self):
        platform = make_cluster_platform(num_devices=1, backend="batched")
        tenants = [
            TenantSpec("throttled", "vecadd",
                       arrivals=ArrivalSpec("poisson", rate_rps=2e7,
                                            requests=120),
                       size=1 << 10, slices=4,
                       rate_limit_rps=2e6, burst=4,
                       max_queue_depth=6,
                       slo_ns=50_000.0, drop_expired=True),
        ]
        report = ServingEngine(platform, tenants, scheduler="wfq",
                               batch=BatchPolicy(max_batch=1),
                               inflight_per_device=1).run()
        t = report.tenant("throttled")
        assert t.offered == 120
        assert t.shed_rate_limit > 0          # the bucket actually throttled
        accounted = (t.served + t.shed_rate_limit + t.shed_queue_full
                     + t.expired)
        assert accounted == t.offered
        assert t.admitted == t.served + t.expired
        assert report.correct

    def test_queue_depth_shedding_triggers(self):
        platform = make_cluster_platform(num_devices=1, backend="batched")
        tenants = [
            TenantSpec("flooded", "vecadd",
                       arrivals=ArrivalSpec("trace", times=(0.0,) * 40),
                       size=1 << 10, slices=4, max_queue_depth=5),
        ]
        report = ServingEngine(platform, tenants,
                               batch=BatchPolicy(max_batch=1),
                               inflight_per_device=1).run()
        t = report.tenant("flooded")
        assert t.shed_queue_full > 0
        assert t.served + t.shed_queue_full == 40
