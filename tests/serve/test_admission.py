"""Token bucket and admission controller unit behavior."""

import pytest

from repro.errors import ConfigError
from repro.serve.admission import (
    ADMIT,
    SHED_QUEUE_FULL,
    SHED_RATE_LIMIT,
    AdmissionController,
    TokenBucket,
)


class TestTokenBucket:
    def test_burst_then_throttle(self):
        bucket = TokenBucket(rate_per_ns=1e-3, burst=4)   # 1 token per µs
        taken = sum(bucket.try_take(0.0) for _ in range(6))
        assert taken == 4

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate_per_ns=1e-3, burst=2)
        assert bucket.try_take(0.0) and bucket.try_take(0.0)
        assert not bucket.try_take(100.0)      # 0.1 token refilled
        assert bucket.try_take(1_100.0)        # > 1 token refilled

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_per_ns=1e-3, burst=3)
        for _ in range(3):
            assert bucket.try_take(0.0)
        taken = sum(bucket.try_take(1e9) for _ in range(10))
        assert taken == 3

    def test_validation(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate_per_ns=0.0, burst=4)
        with pytest.raises(ConfigError):
            TokenBucket(rate_per_ns=1.0, burst=0.5)


class TestAdmissionController:
    def test_unconfigured_tenant_always_admits(self):
        controller = AdmissionController()
        assert controller.admit("free", 0.0, queue_depth=10 ** 6) == ADMIT

    def test_queue_depth_checked_before_tokens(self):
        controller = AdmissionController()
        controller.configure("t", rate_limit_rps=1e6, burst=1.0,
                             max_queue_depth=2)
        assert controller.admit("t", 0.0, queue_depth=2) == SHED_QUEUE_FULL
        # the full-queue shed must not have burned the single token
        assert controller.admit("t", 0.0, queue_depth=0) == ADMIT

    def test_rate_limit_shed(self):
        controller = AdmissionController()
        controller.configure("t", rate_limit_rps=1e6, burst=1.0)
        assert controller.admit("t", 0.0, queue_depth=0) == ADMIT
        assert controller.admit("t", 0.0, queue_depth=0) == SHED_RATE_LIMIT

    def test_negative_limits_rejected(self):
        controller = AdmissionController()
        with pytest.raises(ConfigError):
            controller.configure("t", rate_limit_rps=-1.0)
