"""Scatter-batched point serving: byte-identity, determinism, guards.

Scatter batching fuses arbitrary same-kernel point requests (KVStore
GETs) into one wide launch over a staging ring.  The whole optimization
is only admissible if it is invisible to everything but the clock:
these tests diff the scatter path against scatter-off and against the
unbatched interpreter tier across a grid of load points, and pin the
batcher's contiguity guard for the classic slice-merged mode.
"""

import pytest

from repro.cluster import make_cluster_platform
from repro.errors import ConfigError
from repro.serve import ArrivalSpec, BatchPolicy, ServingEngine, TenantSpec
from repro.serve.batcher import DynamicBatcher
from repro.serve.qos import Request, RequestQueue


def _run_kv(backend, scatter, monkeypatch, *, rate_rps, requests, max_batch,
            items=256):
    monkeypatch.setenv("REPRO_SERVE_SCATTER_BATCH", "1" if scatter else "0")
    platform = make_cluster_platform(num_devices=1, backend=backend)
    tenants = [
        TenantSpec("kv", "kvstore",
                   arrivals=ArrivalSpec("poisson", rate_rps=rate_rps,
                                        requests=requests),
                   size=items),
    ]
    engine = ServingEngine(platform, tenants,
                           batch=BatchPolicy(max_batch=max_batch))
    report = engine.run()
    return report, engine.result_snapshots()


class TestScatterDifferential:
    @pytest.mark.parametrize("rate_rps,requests,max_batch", [
        (1e7, 24, 4),       # light load: mostly singleton batches
        (4e7, 40, 8),       # heavy load: wide fused batches
        (2e7, 32, 16),      # max_batch above what load can fill
    ])
    def test_scatter_is_invisible_except_for_launches(
            self, monkeypatch, rate_rps, requests, max_batch):
        kwargs = dict(rate_rps=rate_rps, requests=requests,
                      max_batch=max_batch)
        on, snap_on = _run_kv("batched", True, monkeypatch, **kwargs)
        off, snap_off = _run_kv("batched", False, monkeypatch, **kwargs)
        interp, snap_interp = _run_kv("interpreter", False, monkeypatch,
                                      **kwargs)

        for report in (on, off, interp):
            assert report.correct
        # byte-identical result memory across all three configurations
        assert snap_on == snap_off == snap_interp
        # identical admission outcomes: same served/shed on every path
        for a, b in ((on, off), (on, interp)):
            assert a.served == b.served
            assert a.tenant("kv").shed == b.tenant("kv").shed
        # the only visible difference: fewer launches under load
        assert on.launches <= off.launches
        if rate_rps >= 4e7:
            assert on.launches < off.launches
            assert on.mean_batch > 1.0

    def test_scatter_runs_are_deterministic(self, monkeypatch):
        kwargs = dict(rate_rps=4e7, requests=30, max_batch=8)
        first, snap_a = _run_kv("batched", True, monkeypatch, **kwargs)
        second, snap_b = _run_kv("batched", True, monkeypatch, **kwargs)
        assert snap_a == snap_b
        assert first.launches == second.launches
        assert first.aggregate.samples == second.aggregate.samples
        assert first.p95_ns == second.p95_ns


class TestContiguityGuard:
    def test_take_rejects_gapped_slice_run(self, monkeypatch):
        # the slice-merged mode launches over [lo, hi); a gapped run would
        # compute slices nobody asked for.  preview() stops at gaps, so
        # force one through to prove take() still refuses it.
        batcher = DynamicBatcher(BatchPolicy(max_batch=4))
        queue = RequestQueue()
        gapped = [
            Request("t", 0, 0, 0.0, "interactive", float("inf"), 0, 1),
            Request("t", 1, 1, 0.0, "interactive", float("inf"), 5, 6),
        ]
        for request in gapped:
            queue.push(request)
        monkeypatch.setattr(batcher, "preview",
                            lambda *a, **k: list(gapped))
        with pytest.raises(ConfigError, match="not contiguous"):
            batcher.take(queue, "t", batchable=True)

    def test_take_accepts_contiguous_and_duplicate_slices(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=4))
        queue = RequestQueue()
        for req in (
            Request("t", 0, 0, 0.0, "interactive", float("inf"), 0, 2),
            Request("t", 1, 1, 0.0, "interactive", float("inf"), 2, 3),
            Request("t", 2, 2, 0.0, "interactive", float("inf"), 0, 2),
        ):
            queue.push(req)
        batch = batcher.take(queue, "t", batchable=True)
        assert batch.size == 3
        assert (batch.slice_lo, batch.slice_hi) == (0, 3)
        assert not batch.scatter
