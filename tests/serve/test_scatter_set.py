"""Scatter-batched SET traffic: byte-identity, op splitting, validation.

The staging-ring scatter path now covers KVStore SETs as well as GETs.
A SET mutates the table, so the differential bar is higher than for
reads: fused, unbatched and interpreter-tier runs of a mixed GET/SET
stream must leave *identical* bytes behind — table memory included —
and a scatter batch must never mix ops (a GET descriptor is 5 words, a
SET descriptor 6; the batcher splits runs at the op boundary via
``Request.batch_key``).
"""

import pytest

from repro.cluster import make_cluster_platform
from repro.errors import ConfigError
from repro.serve import ArrivalSpec, BatchPolicy, ServingEngine, TenantSpec
from repro.serve.batcher import DynamicBatcher
from repro.serve.qos import Request, RequestQueue


def _run_mixed(backend, scatter, monkeypatch, *, rate_rps, requests,
               max_batch, get_fraction, items=256, partitions=None,
               partition=None):
    monkeypatch.setenv("REPRO_SERVE_SCATTER_BATCH", "1" if scatter else "0")
    platform = make_cluster_platform(num_devices=1, backend=backend,
                                     partitions=partitions)
    tenants = [
        TenantSpec("kv", "kvstore",
                   arrivals=ArrivalSpec("poisson", rate_rps=rate_rps,
                                        requests=requests),
                   size=items, get_fraction=get_fraction,
                   partition=partition),
    ]
    engine = ServingEngine(platform, tenants,
                           batch=BatchPolicy(max_batch=max_batch))
    report = engine.run()
    return platform, report, engine.result_snapshots()


class TestScatterSetDifferential:
    @pytest.mark.parametrize("rate_rps,requests,max_batch,get_fraction", [
        (1e7, 24, 4, 0.5),       # light load, even mix
        (4e7, 40, 8, 0.7),       # heavy load: wide fused batches
        (4e7, 32, 8, 0.0),       # all-SET stream
    ])
    def test_scatter_sets_are_invisible_except_for_launches(
            self, monkeypatch, rate_rps, requests, max_batch, get_fraction):
        kwargs = dict(rate_rps=rate_rps, requests=requests,
                      max_batch=max_batch, get_fraction=get_fraction)
        _, on, snap_on = _run_mixed("batched", True, monkeypatch, **kwargs)
        _, off, snap_off = _run_mixed("batched", False, monkeypatch,
                                      **kwargs)
        _, interp, snap_interp = _run_mixed("interpreter", False,
                                            monkeypatch, **kwargs)

        for report in (on, off, interp):
            assert report.correct
        # byte-identical memory across all three configurations — the
        # SET-mutated table included, not just the GET result slots
        assert snap_on == snap_off == snap_interp
        for a, b in ((on, off), (on, interp)):
            assert a.served == b.served
            assert a.tenant("kv").shed == b.tenant("kv").shed
        assert on.launches <= off.launches
        if rate_rps >= 4e7:
            assert on.launches < off.launches
            assert on.mean_batch > 1.0

    def test_mixed_scatter_runs_are_deterministic(self, monkeypatch):
        kwargs = dict(rate_rps=4e7, requests=30, max_batch=8,
                      get_fraction=0.5)
        _, first, snap_a = _run_mixed("batched", True, monkeypatch, **kwargs)
        _, second, snap_b = _run_mixed("batched", True, monkeypatch,
                                       **kwargs)
        assert snap_a == snap_b
        assert first.launches == second.launches
        assert first.p95_ns == second.p95_ns

    def test_mixed_scatter_on_partitioned_cluster(self, monkeypatch):
        """Pinned mixed GET/SET traffic completes entirely in its
        partition (the staging ring is partition-local too)."""
        kwargs = dict(rate_rps=4e7, requests=24, max_batch=8,
                      get_fraction=0.5, partitions="rt:1,batch:1",
                      partition="rt")
        platform, report, _ = _run_mixed("batched", True, monkeypatch,
                                         **kwargs)
        assert report.correct
        assert platform.stats.get("partition.rt.kernels_completed") > 0
        assert platform.stats.get("partition.batch.kernels_completed") == 0


class TestOpHomogeneousBatches:
    def _req(self, index, batch_key):
        return Request("t", index, index, 0.0, "interactive", float("inf"),
                       0, 0, batch_key=batch_key)

    def test_preview_splits_runs_at_op_boundary(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=8))
        queue = RequestQueue()
        # GET, GET, SET, GET at the head: the first preview must stop
        # before the SET even though max_batch has room
        for index, key in enumerate((0, 0, 1, 0)):
            queue.push(self._req(index, key))
        head = batcher.preview(queue, "t", batchable=True, scatter=True)
        assert [r.index for r in head] == [0, 1]
        assert all(r.batch_key == 0 for r in head)

    def test_preview_keeps_homogeneous_runs_whole(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=8))
        queue = RequestQueue()
        for index in range(4):
            queue.push(self._req(index, 1))
        head = batcher.preview(queue, "t", batchable=True, scatter=True)
        assert len(head) == 4
        assert all(r.batch_key == 1 for r in head)


class TestGetFractionValidation:
    @pytest.mark.parametrize("bad", [-0.1, 1.5, 2.0])
    def test_out_of_range_get_fraction_rejected(self, bad):
        with pytest.raises(ConfigError, match="get_fraction"):
            TenantSpec("kv", "kvstore",
                       arrivals=ArrivalSpec("poisson", rate_rps=1e6,
                                            requests=4),
                       get_fraction=bad)

    def test_get_fraction_rejected_for_non_kvstore(self):
        with pytest.raises(ConfigError, match="kvstore"):
            TenantSpec("va", "vecadd",
                       arrivals=ArrivalSpec("poisson", rate_rps=1e6,
                                            requests=4),
                       get_fraction=0.5)
