"""End-to-end serving engine behavior on a real cluster runtime."""

import numpy as np
import pytest

from repro.cluster import make_cluster_platform
from repro.config import ClusterConfig
from repro.errors import ConfigError
from repro.serve import (
    ArrivalSpec,
    AutoscalePolicy,
    BatchPolicy,
    ServingEngine,
    TenantSpec,
    resolve_batch_policy,
    resolve_serve_scheduler,
)
from repro.serve.autoscaler import Autoscaler


def _mixed_tenants(requests=30):
    return [
        TenantSpec("kv", "kvstore",
                   arrivals=ArrivalSpec("poisson", rate_rps=4e6,
                                        requests=requests),
                   qos_class="interactive", slo_ns=60_000.0, size=512),
        TenantSpec("scan", "olap",
                   arrivals=ArrivalSpec("poisson", rate_rps=1e6,
                                        requests=max(8, requests // 3)),
                   qos_class="interactive", size=1 << 12, slices=4),
        TenantSpec("bulk", "vecadd",
                   arrivals=ArrivalSpec("poisson", rate_rps=1e6,
                                        requests=max(8, requests // 3)),
                   qos_class="batch", size=1 << 10, slices=4),
    ]


class TestServingRun:
    def test_all_tenants_served_and_correct(self):
        platform = make_cluster_platform(num_devices=2, backend="batched")
        report = ServingEngine(platform, _mixed_tenants()).run()
        assert report.correct
        assert report.tenant("kv").served == 30
        assert report.tenant("scan").served == 10
        assert report.tenant("bulk").served == 10
        assert report.served == report.offered == 50

    def test_percentiles_ordered_and_slo_accounted(self):
        platform = make_cluster_platform(num_devices=2, backend="batched")
        report = ServingEngine(platform, _mixed_tenants()).run()
        assert report.p50_ns <= report.p95_ns <= report.p99_ns
        kv = report.tenant("kv")
        assert 0.0 <= kv.slo_attainment <= 1.0
        assert kv.goodput_rps <= kv.throughput_rps + 1e-9

    def test_render_mentions_every_tenant(self):
        platform = make_cluster_platform(num_devices=2, backend="batched")
        report = ServingEngine(platform, _mixed_tenants(12)).run()
        text = report.render()
        for tenant in ("kv", "scan", "bulk"):
            assert tenant in text
        assert "aggregate" in text

    def test_deterministic_across_processes_like_runs(self):
        def run():
            platform = make_cluster_platform(num_devices=2,
                                             backend="batched")
            return ServingEngine(platform, _mixed_tenants(20)).run()
        first, second = run(), run()
        assert first.aggregate.samples == second.aggregate.samples

    def test_seed_changes_traffic(self):
        def run(seed):
            platform = make_cluster_platform(
                num_devices=2, backend="batched",
                cluster=ClusterConfig(num_devices=2, seed=seed),
            )
            return ServingEngine(platform, _mixed_tenants(20)).run()
        assert (run(1).aggregate.samples != run(2).aggregate.samples)

    def test_timeline_windows_cover_all_served(self):
        platform = make_cluster_platform(num_devices=2, backend="batched")
        report = ServingEngine(platform, _mixed_tenants(20)).run()
        served_from_windows = sum(
            v for w in report.timeline.windows
            for k, v in w.deltas.items() if k.endswith(".served")
        )
        assert served_from_windows == report.served

    def test_trace_cache_counters_are_per_run_deltas(self):
        # two engines sharing one platform must each report only their own
        # run's cache traffic, not the platform's cumulative counters
        platform = make_cluster_platform(num_devices=1, backend="batched")

        def tenants(name):
            return [TenantSpec(name, "vecadd",
                               arrivals=ArrivalSpec("poisson", rate_rps=1e6,
                                                    requests=12),
                               size=1 << 10, slices=4)]
        first = ServingEngine(platform, tenants("one")).run()
        second = ServingEngine(platform, tenants("two")).run()
        cumulative = (platform.stats.get("exec.trace_cache_hits")
                      + platform.stats.get("exec.trace_cache_misses"))
        first_total = first.trace_cache_hits + first.trace_cache_misses
        second_total = second.trace_cache_hits + second.trace_cache_misses
        assert first_total > 0 and second_total > 0
        assert first_total + second_total == cumulative

    def test_timeline_starts_at_run_epoch(self):
        platform = make_cluster_platform(num_devices=1, backend="batched")
        report = ServingEngine(platform, _mixed_tenants(8)).run()
        # workload setup advances the simulator before serving begins;
        # the first window must not stretch back to t=0
        assert report.timeline.windows[0].start_ns > 0.0

    def test_engine_runs_once(self):
        platform = make_cluster_platform(num_devices=1, backend="batched")
        engine = ServingEngine(platform, _mixed_tenants(6))
        engine.run()
        with pytest.raises(ConfigError):
            engine.run()


class TestBatchingEquivalence:
    def test_identical_results_and_fewer_launches(self):
        def run(max_batch):
            platform = make_cluster_platform(num_devices=2,
                                             backend="batched")
            tenants = [
                TenantSpec("t", "vecadd",
                           arrivals=ArrivalSpec("poisson", rate_rps=1e7,
                                                requests=48),
                           size=1 << 10, slices=8),
            ]
            engine = ServingEngine(
                platform, tenants,
                batch=BatchPolicy(max_batch=max_batch, max_wait_ns=2_000.0),
            )
            report = engine.run()
            return report, engine.result_snapshots()

        unbatched, snap_u = run(1)
        batched, snap_b = run(8)
        assert unbatched.correct and batched.correct
        assert snap_u == snap_b
        assert batched.launches < unbatched.launches
        assert batched.mean_batch > 1.5

    def test_kvstore_never_batches_with_scatter_disabled(self, monkeypatch):
        # the pre-scatter behavior: point lookups can't merge by slice
        # contiguity, so every request is its own launch
        monkeypatch.setenv("REPRO_SERVE_SCATTER_BATCH", "0")
        platform = make_cluster_platform(num_devices=1, backend="batched")
        tenants = [
            TenantSpec("kv", "kvstore",
                       arrivals=ArrivalSpec("poisson", rate_rps=1e7,
                                            requests=20),
                       size=256),
        ]
        report = ServingEngine(
            platform, tenants, batch=BatchPolicy(max_batch=8),
        ).run()
        assert report.correct
        assert report.launches == 20

    def test_kvstore_scatter_batching_fuses_requests(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_SCATTER_BATCH", "1")
        platform = make_cluster_platform(num_devices=1, backend="batched")
        tenants = [
            TenantSpec("kv", "kvstore",
                       arrivals=ArrivalSpec("poisson", rate_rps=1e7,
                                            requests=20),
                       size=256),
        ]
        report = ServingEngine(
            platform, tenants, batch=BatchPolicy(max_batch=8),
        ).run()
        assert report.correct
        assert report.tenant("kv").served == 20
        assert report.launches < 20
        assert report.mean_batch > 1.0


class TestClosedLoop:
    def test_closed_loop_serves_full_budget(self):
        platform = make_cluster_platform(num_devices=1, backend="batched")
        tenants = [
            TenantSpec("workers", "vecadd",
                       arrivals=ArrivalSpec("closed", requests=24, clients=3,
                                            think_ns=1_000.0),
                       size=1 << 10, slices=4),
        ]
        report = ServingEngine(platform, tenants).run()
        assert report.correct
        assert report.tenant("workers").served == 24


class TestAutoscaler:
    def test_hysteresis_moves_active_set(self):
        scaler = Autoscaler(AutoscalePolicy(enabled=True, min_devices=1),
                            num_devices=4)
        assert scaler.active == 1
        assert scaler.observe(1.0, 0.95) == 2
        assert scaler.observe(2.0, 0.95) == 3
        assert scaler.observe(3.0, 0.5) == 3       # inside the deadband
        assert scaler.observe(4.0, 0.1) == 2
        assert scaler.scale_ups == 2 and scaler.scale_downs == 1

    def test_disabled_pins_full_cluster(self):
        scaler = Autoscaler(AutoscalePolicy(enabled=False), num_devices=4)
        assert scaler.active == 4
        assert scaler.observe(1.0, 0.0) == 4

    def test_engine_scales_up_under_burst(self):
        platform = make_cluster_platform(num_devices=4, backend="batched")
        tenants = [
            TenantSpec("burst", "vecadd",
                       arrivals=ArrivalSpec("bursty", rate_rps=2e5,
                                            burst_rate_rps=2e7,
                                            dwell_ns=100_000.0, requests=96),
                       size=1 << 14, slices=8),
        ]
        report = ServingEngine(
            platform, tenants,
            batch=BatchPolicy(max_batch=1),
            autoscale=AutoscalePolicy(enabled=True, min_devices=1,
                                      interval_ns=10_000.0),
            inflight_per_device=2,
        ).run()
        assert report.correct
        assert report.scale_ups >= 1
        assert max(v for _, v in report.active_device_series) >= 2

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            AutoscalePolicy(min_devices=0)
        with pytest.raises(ConfigError):
            AutoscalePolicy(low_watermark=0.9, high_watermark=0.5)
        with pytest.raises(ConfigError):
            Autoscaler(AutoscalePolicy(enabled=True, min_devices=8),
                       num_devices=4)


class TestEnvKnobs:
    def test_scheduler_env_resolved_and_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_SCHEDULER", "fifo")
        assert resolve_serve_scheduler(None) == "fifo"
        assert resolve_serve_scheduler("wfq") == "wfq"   # explicit wins
        monkeypatch.setenv("REPRO_SERVE_SCHEDULER", "lottery")
        with pytest.raises(ConfigError):
            resolve_serve_scheduler(None)

    def test_batch_env_resolved_and_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "4")
        monkeypatch.setenv("REPRO_SERVE_MAX_WAIT_NS", "1500")
        policy = resolve_batch_policy(None)
        assert policy.max_batch == 4 and policy.max_wait_ns == 1500.0
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "many")
        with pytest.raises(ConfigError):
            resolve_batch_policy(None)
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "0")
        with pytest.raises(ConfigError):
            resolve_batch_policy(None)

    def test_tenant_validation(self):
        with pytest.raises(ConfigError):
            TenantSpec("x", "graphql")
        with pytest.raises(ConfigError):
            TenantSpec("x", "vecadd", qos_class="realtime")
        with pytest.raises(ConfigError):
            TenantSpec("x", "vecadd", weight=0.0)
        platform = make_cluster_platform(num_devices=1, backend="batched")
        with pytest.raises(ConfigError):
            ServingEngine(platform, [])
        specs = [TenantSpec("same", "vecadd"), TenantSpec("same", "olap")]
        with pytest.raises(ConfigError):
            ServingEngine(platform, specs)
