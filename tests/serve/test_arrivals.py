"""Arrival process generators: determinism, shapes, spec validation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serve.arrivals import (
    ArrivalSpec,
    ClosedLoopArrivals,
    make_arrival_process,
    stream_rng,
)


def _times(spec, name="t"):
    return make_arrival_process(spec, stream_rng(7, name)).initial(0.0)


class TestStreamRng:
    def test_same_seed_and_name_reproduce(self):
        a = stream_rng(42, "tenant").random(8)
        b = stream_rng(42, "tenant").random(8)
        assert np.array_equal(a, b)

    def test_different_names_decorrelate(self):
        a = stream_rng(42, "tenant-a").random(8)
        b = stream_rng(42, "tenant-b").random(8)
        assert not np.array_equal(a, b)

    def test_different_seeds_decorrelate(self):
        a = stream_rng(1, "tenant").random(8)
        b = stream_rng(2, "tenant").random(8)
        assert not np.array_equal(a, b)


class TestPoisson:
    def test_count_and_monotone(self):
        times = _times(ArrivalSpec("poisson", rate_rps=1e6, requests=200))
        assert len(times) == 200
        assert np.all(np.diff(times) >= 0)

    def test_mean_rate_roughly_honored(self):
        spec = ArrivalSpec("poisson", rate_rps=1e6, requests=2000)
        times = _times(spec)
        mean_gap = float(np.mean(np.diff(times)))
        assert 0.8 * spec.interarrival_ns < mean_gap < 1.2 * spec.interarrival_ns

    def test_deterministic(self):
        spec = ArrivalSpec("poisson", rate_rps=1e6, requests=64)
        assert np.array_equal(_times(spec), _times(spec))


class TestBursty:
    def test_burstier_than_poisson(self):
        n = 2000
        poisson = _times(ArrivalSpec("poisson", rate_rps=1e6, requests=n))
        bursty = _times(ArrivalSpec("bursty", rate_rps=2e5,
                                    burst_rate_rps=1e7, dwell_ns=50_000.0,
                                    requests=n))
        def cv(times):
            gaps = np.diff(times)
            return float(np.std(gaps) / np.mean(gaps))
        assert cv(bursty) > 1.5 * cv(poisson)

    def test_count_and_monotone(self):
        times = _times(ArrivalSpec("bursty", rate_rps=1e5,
                                   burst_rate_rps=1e6, requests=128))
        assert len(times) == 128
        assert np.all(np.diff(times) >= 0)


class TestDiurnal:
    def test_count_and_monotone(self):
        times = _times(ArrivalSpec("diurnal", rate_rps=1e6, requests=256,
                                   amplitude=0.8, period_ns=1e5))
        assert len(times) == 256
        assert np.all(np.diff(times) >= 0)

    def test_peak_phase_denser_than_trough(self):
        spec = ArrivalSpec("diurnal", rate_rps=1e6, requests=4000,
                           amplitude=0.9, period_ns=1e6)
        times = _times(spec)
        phase = np.mod(times, spec.period_ns) / spec.period_ns
        peak = np.sum((phase > 0.1) & (phase < 0.4))     # sin > 0 half
        trough = np.sum((phase > 0.6) & (phase < 0.9))   # sin < 0 half
        assert peak > 1.5 * trough


class TestTrace:
    def test_replays_offsets_from_epoch(self):
        spec = ArrivalSpec("trace", times=(0.0, 10.0, 10.0, 35.0))
        times = make_arrival_process(spec, stream_rng(0, "x")).initial(100.0)
        assert list(times) == [100.0, 110.0, 110.0, 135.0]

    def test_total_requests_is_trace_length(self):
        assert ArrivalSpec("trace", times=(1.0, 2.0)).total_requests == 2


class TestClosedLoop:
    def test_initial_seeds_one_per_client(self):
        spec = ArrivalSpec("closed", requests=50, clients=4, think_ns=100.0)
        process = make_arrival_process(spec, stream_rng(3, "c"))
        assert isinstance(process, ClosedLoopArrivals)
        assert len(process.initial(0.0)) == 4
        assert not process.open_loop

    def test_completion_feedback_until_budget(self):
        spec = ArrivalSpec("closed", requests=6, clients=2, think_ns=10.0)
        process = make_arrival_process(spec, stream_rng(3, "c"))
        process.initial(0.0)
        emitted = 2
        when = 100.0
        while True:
            nxt = process.on_completion(when)
            if nxt is None:
                break
            assert nxt >= when
            emitted += 1
            when = nxt + 5.0
        assert emitted == 6
        assert process.exhausted

    def test_clients_capped_by_budget(self):
        spec = ArrivalSpec("closed", requests=3, clients=8)
        process = make_arrival_process(spec, stream_rng(3, "c"))
        assert len(process.initial(0.0)) == 3


class TestValidation:
    def test_unknown_process(self):
        with pytest.raises(ConfigError):
            ArrivalSpec("fractal")

    def test_nonpositive_rate(self):
        with pytest.raises(ConfigError):
            ArrivalSpec("poisson", rate_rps=0.0)

    def test_burst_below_base_rate(self):
        with pytest.raises(ConfigError):
            ArrivalSpec("bursty", rate_rps=1e6, burst_rate_rps=1e5)

    def test_bad_amplitude(self):
        with pytest.raises(ConfigError):
            ArrivalSpec("diurnal", amplitude=1.5)

    def test_decreasing_trace(self):
        with pytest.raises(ConfigError):
            ArrivalSpec("trace", times=(5.0, 1.0))

    def test_empty_trace(self):
        with pytest.raises(ConfigError):
            ArrivalSpec("trace")

    def test_zero_clients(self):
        with pytest.raises(ConfigError):
            ArrivalSpec("closed", clients=0)
