"""Degenerate-input guards: zero-request tenants, empty aggregates and
zero-length utilization windows report zeros instead of raising."""

from repro.obs.timeline import UtilizationSampler
from repro.serve.stats import ServingReport, TenantReport
from repro.sim.stats import Distribution, StatsRegistry


def _tenant(**overrides):
    fields = dict(name="idle", kind="olap", qos_class="batch",
                  weight=1.0, slo_ns=1_000.0)
    fields.update(overrides)
    return TenantReport(**fields)


class TestZeroRequestTenant:
    def test_latency_summary_is_zero_not_valueerror(self):
        tenant = _tenant()
        assert tenant.latency_summary() == (0.0, 0.0, 0.0)
        assert tenant.p50_ns == tenant.p95_ns == tenant.p99_ns == 0.0

    def test_ratio_properties_are_zero(self):
        tenant = _tenant()
        assert tenant.served == 0
        assert tenant.throughput_rps == 0.0
        assert tenant.goodput_rps == 0.0
        assert tenant.slo_attainment == 0.0
        assert tenant.mean_batch == 0.0
        assert tenant.accounting_ok          # 0 == 0

    def test_all_shed_tenant_reports_cleanly(self):
        tenant = _tenant(offered=10, shed_rate_limit=4, shed_queue_full=6)
        assert tenant.latency_summary() == (0.0, 0.0, 0.0)
        assert tenant.slo_attainment == 0.0
        assert tenant.accounting_ok

    def test_summary_cache_refreshes_after_first_serve(self):
        tenant = _tenant()
        assert tenant.p99_ns == 0.0          # primes the empty cache
        tenant.latencies.add(42.0)
        assert tenant.p99_ns == 42.0


class TestEmptyServingReport:
    def _report(self, tenants=()):
        registry = StatsRegistry()
        return ServingReport(tenants=list(tenants), span_ns=0.0,
                             aggregate=Distribution(),
                             timeline=registry.timeline(""),
                             active_device_series=[])

    def test_empty_aggregate_percentiles_are_zero(self):
        report = self._report()
        assert report.p50_ns == report.p95_ns == report.p99_ns == 0.0
        assert report.served == 0
        assert report.throughput_rps == 0.0
        assert report.slo_attainment == 0.0

    def test_render_with_zero_request_tenant_does_not_raise(self):
        report = self._report([_tenant()])
        assert "idle" in report.render()


class TestZeroLengthUtilizationWindow:
    class _Dram:
        peak_bw_bytes_per_ns = 0.0       # exercises the peak==0 guard

    class _Device:
        trace_pid = 1

        def __init__(self):
            self.stats = StatsRegistry()
            self.units = []
            self.dram = TestZeroLengthUtilizationWindow._Dram()

    def test_remarking_same_instant_is_a_noop(self):
        device = self._Device()
        sampler = UtilizationSampler([device], start_ns=0.0)
        device.stats.add("l2.read_hits", 4.0)
        sampler.mark(100.0)
        before = list(sampler.samples)
        sampler.mark(100.0)              # final tick == finish pattern
        sampler.mark(50.0)               # rewound clock: also skipped
        assert sampler.samples == before

    def test_no_marks_summary_is_empty(self):
        sampler = UtilizationSampler([self._Device()], start_ns=0.0)
        assert sampler.summary() == {}

    def test_mark_before_any_activity_reports_zero_ratios(self):
        sampler = UtilizationSampler([self._Device()], start_ns=0.0)
        sampler.mark(1_000.0)
        values = {name: value for name, _pid, _t, value in sampler.samples}
        assert all(value == 0.0 for value in values.values())
