"""Tests for HDM coherence (back-invalidation) and the CXL switch."""

import pytest

from repro.cxl.hdm import HDMCoherence, _line_hash
from repro.cxl.link import CXLLink
from repro.cxl.switch import SWITCH_HOP_NS, CXLSwitch
from repro.errors import ConfigError
from repro.sim.stats import StatsRegistry


class TestHDMCoherence:
    def test_zero_fraction_never_invalidates(self):
        coherence = HDMCoherence(CXLLink(), dirty_fraction=0.0)
        assert coherence.access(0x1000, 64, 5.0) == 5.0

    def test_full_fraction_always_invalidates_once(self):
        stats = StatsRegistry()
        coherence = HDMCoherence(CXLLink(), dirty_fraction=1.0, stats=stats)
        first = coherence.access(0x1000, 64, 0.0)
        assert first > 0.0
        # second touch of the same line: already invalidated
        second = coherence.access(0x1000, 64, 1000.0)
        assert second == 1000.0
        assert stats.get("hdm.back_invalidations") == 1

    def test_fraction_controls_rate(self):
        lines = 2000
        for fraction in (0.2, 0.8):
            stats = StatsRegistry()
            coherence = HDMCoherence(CXLLink(), fraction, stats=stats)
            for i in range(lines):
                coherence.access(i * 64, 64, 0.0)
            observed = stats.get("hdm.back_invalidations") / lines
            assert observed == pytest.approx(fraction, abs=0.05)

    def test_hash_deterministic(self):
        assert _line_hash(12345) == _line_hash(12345)
        assert 0.0 <= _line_hash(999) < 1.0

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            HDMCoherence(None, dirty_fraction=1.5)

    def test_reset_forgets_invalidations(self):
        coherence = HDMCoherence(CXLLink(), dirty_fraction=1.0)
        coherence.access(0, 64, 0.0)
        coherence.reset()
        assert coherence.access(0, 64, 0.0) > 0.0


class TestCXLSwitch:
    def test_host_path_pays_hop(self):
        switch = CXLSwitch(num_downstream=4)
        done = switch.host_to_device(0.0, 0, 64)
        assert done >= SWITCH_HOP_NS

    def test_p2p_requires_distinct_ports(self):
        switch = CXLSwitch(num_downstream=4)
        with pytest.raises(ConfigError):
            switch.peer_to_peer(0.0, 1, 1, 64)

    def test_p2p_slower_than_direct(self):
        switch = CXLSwitch(num_downstream=4)
        p2p = switch.peer_to_peer(0.0, 0, 1, 64)
        direct = switch.host_to_device(0.0, 2, 64)
        assert p2p > direct - SWITCH_HOP_NS

    def test_aggregate_bandwidth_scales(self):
        switch = CXLSwitch(num_downstream=8)
        assert switch.in_switch_ndp_bandwidth(8) == pytest.approx(
            8 * switch.in_switch_ndp_bandwidth(1)
        )

    def test_in_switch_bounds(self):
        switch = CXLSwitch(num_downstream=4)
        with pytest.raises(ConfigError):
            switch.in_switch_ndp_bandwidth(5)
        with pytest.raises(ConfigError):
            switch.in_switch_ndp_bandwidth(0)

    def test_port_contention(self):
        switch = CXLSwitch(num_downstream=2)
        first = switch.host_to_device(0.0, 0, 1 << 16)
        second = switch.host_to_device(0.0, 0, 1 << 16)
        assert second > first

    def test_needs_downstream_port(self):
        with pytest.raises(ConfigError):
            CXLSwitch(num_downstream=0)


class TestSwitchTiming:
    """Hop-latency constants and bandwidth contention on the switch paths."""

    def test_host_to_device_latency_decomposition(self):
        switch = CXLSwitch(num_downstream=2)
        size = 4096
        bw = switch.config.bw_per_dir_bytes_per_ns
        done = switch.host_to_device(0.0, 0, size)
        # upstream then downstream serialization, plus one link one-way and
        # the switch hop
        expected = 2 * size / bw + switch.config.one_way_ns + SWITCH_HOP_NS
        assert done == pytest.approx(expected)

    def test_p2p_latency_decomposition(self):
        switch = CXLSwitch(num_downstream=4)
        size = 1 << 14
        bw = switch.config.bw_per_dir_bytes_per_ns
        done = switch.peer_to_peer(0.0, 2, 3, size)
        # src port egress, dst port ingress, two link one-ways + the hop
        expected = 2 * size / bw + 2 * switch.config.one_way_ns + SWITCH_HOP_NS
        assert done == pytest.approx(expected)

    def test_upstream_contention_serializes_overlapping_transfers(self):
        switch = CXLSwitch(num_downstream=2)
        size = 1 << 16
        bw = switch.config.bw_per_dir_bytes_per_ns
        # both transfers arrive at t=0 for *different* downstream ports: the
        # shared upstream port serializes them
        first = switch.host_to_device(0.0, 0, size)
        second = switch.host_to_device(0.0, 1, size)
        assert second - first == pytest.approx(size / bw)

    def test_downstream_contention_under_overlap(self):
        switch = CXLSwitch(num_downstream=4)
        size = 1 << 16
        bw = switch.config.bw_per_dir_bytes_per_ns
        # two P2P flows into the same destination port from different
        # sources: destination ingress is the bottleneck
        first = switch.peer_to_peer(0.0, 0, 2, size)
        second = switch.peer_to_peer(0.0, 1, 2, size)
        assert second - first == pytest.approx(size / bw)

    def test_disjoint_ports_do_not_contend(self):
        switch = CXLSwitch(num_downstream=4)
        size = 1 << 16
        first = switch.peer_to_peer(0.0, 0, 1, size)
        second = switch.peer_to_peer(0.0, 2, 3, size)
        assert second == pytest.approx(first)

    def test_same_port_p2p_rejected(self):
        switch = CXLSwitch(num_downstream=4)
        with pytest.raises(ConfigError):
            switch.peer_to_peer(0.0, 3, 3, 64)

    def test_byte_counters_accumulate(self):
        switch = CXLSwitch(num_downstream=2)
        switch.host_to_device(0.0, 0, 100)
        switch.host_to_device(0.0, 1, 50)
        switch.peer_to_peer(0.0, 0, 1, 25)
        assert switch.stats.get("switch.host_bytes") == 150
        assert switch.stats.get("switch.p2p_bytes") == 25

    def test_reset_clears_byte_counters(self):
        switch = CXLSwitch(num_downstream=2)
        switch.host_to_device(0.0, 0, 4096)
        switch.peer_to_peer(0.0, 0, 1, 4096)
        switch.reset()
        assert switch.stats.get("switch.host_bytes") == 0
        assert switch.stats.get("switch.p2p_bytes") == 0
        # bandwidth servers restart too: a post-reset transfer sees an
        # idle switch
        fresh = CXLSwitch(num_downstream=2)
        assert switch.host_to_device(0.0, 0, 4096) == pytest.approx(
            fresh.host_to_device(0.0, 0, 4096)
        )

    def test_reset_leaves_other_registry_entries(self):
        stats = StatsRegistry()
        stats.add("experiment.runs", 3)
        switch = CXLSwitch(num_downstream=2, stats=stats)
        switch.host_to_device(0.0, 0, 64)
        switch.reset()
        assert stats.get("experiment.runs") == 3
        assert stats.get("switch.host_bytes") == 0
