"""Tests for CXL protocol structures and link timing."""

import pytest

from repro.config import CXLConfig
from repro.cxl.link import CXLLink
from repro.cxl.protocol import (
    HEADER_BYTES,
    CXLPacket,
    LoadToUseProfile,
    PacketType,
    PortLatencyBreakdown,
)
from repro.errors import ConfigError


class TestPortLatency:
    def test_round_trip_in_paper_range(self):
        breakdown = PortLatencyBreakdown()
        assert 52.0 <= breakdown.round_trip_ns <= 70.0

    def test_one_way_is_half(self):
        breakdown = PortLatencyBreakdown()
        assert breakdown.one_way_ns == pytest.approx(breakdown.round_trip_ns / 2)


class TestLoadToUse:
    def test_default_decomposition(self):
        profile = LoadToUseProfile()
        total = (profile.host_path_ns + profile.link_round_trip_ns
                 + profile.device_dram_ns)
        assert total == pytest.approx(profile.load_to_use_ns)

    def test_scaled_profiles(self):
        assert LoadToUseProfile().scaled(2.0).load_to_use_ns == 300.0
        assert LoadToUseProfile().scaled(4.0).load_to_use_ns == 600.0


class TestPacketWireBytes:
    def test_read_request_is_header_only(self):
        packet = CXLPacket(PacketType.MEM_RD, 0x1000, 64)
        assert packet.wire_bytes == HEADER_BYTES

    def test_write_carries_payload(self):
        packet = CXLPacket(PacketType.MEM_WR, 0x1000, 64, data=b"\0" * 64)
        assert packet.wire_bytes == HEADER_BYTES + 64

    def test_read_response_carries_data(self):
        packet = CXLPacket(PacketType.MEM_RD_RESP, 0, 64, data=b"\0" * 64)
        assert packet.wire_bytes == HEADER_BYTES + 64

    def test_ack_is_small(self):
        packet = CXLPacket(PacketType.MEM_WR_ACK, 0, 0)
        assert packet.wire_bytes == HEADER_BYTES


class TestCXLConfig:
    def test_default_one_way(self):
        assert CXLConfig().one_way_ns == pytest.approx(35.0)

    def test_with_load_to_use_preserves_fixed(self):
        config = CXLConfig()
        stretched = config.with_load_to_use(600.0)
        assert stretched.load_to_use_ns == 600.0
        assert stretched.fixed_overhead_ns == pytest.approx(
            config.fixed_overhead_ns
        )

    def test_too_small_ltu_rejected(self):
        with pytest.raises(ConfigError):
            CXLConfig().with_load_to_use(50.0)


class TestCXLLink:
    def test_one_way_latency_applied(self):
        link = CXLLink()
        packet = CXLPacket(PacketType.MEM_RD, 0, 64)
        arrival = link.send_to_device(0.0, packet)
        assert arrival >= link.one_way_ns

    def test_read_round_trip_at_least_two_one_ways(self):
        link = CXLLink()
        done = link.read_round_trip(0.0, 0x1000)
        assert done >= 2 * link.one_way_ns

    def test_bandwidth_saturation(self):
        link = CXLLink()
        finish = 0.0
        n, size = 200, 256
        for _ in range(n):
            packet = CXLPacket(PacketType.MEM_WR, 0, size, data=b"\0" * size)
            finish = link.send_to_device(0.0, packet)
        wire = HEADER_BYTES + size
        expected_min = n * wire / link.config.bw_per_dir_bytes_per_ns
        assert finish >= expected_min

    def test_directions_independent(self):
        link = CXLLink()
        big = CXLPacket(PacketType.MEM_WR, 0, 4096, data=b"\0" * 4096)
        for _ in range(100):
            link.send_to_device(0.0, big)
        # upstream unaffected by downstream congestion
        response = CXLPacket(PacketType.MEM_RD_RESP, 0, 64, data=b"\0" * 64)
        assert link.send_to_host(0.0, response) <= 40.0

    def test_back_invalidate_dirty_slower_than_clean(self):
        link = CXLLink()
        clean = link.back_invalidate_round_trip(0.0, 0, dirty=False)
        link2 = CXLLink()
        dirty = link2.back_invalidate_round_trip(0.0, 0, dirty=True)
        assert dirty >= clean

    def test_bytes_moved_accounting(self):
        link = CXLLink()
        link.write_round_trip(0.0, 0, b"\0" * 64)
        assert link.bytes_moved() == HEADER_BYTES * 2 + 64
