"""Tests for the M2func packet filter."""

import pytest
from hypothesis import given, strategies as st

from repro.cxl.packet_filter import ENTRY_BYTES, FilterEntry, PacketFilter
from repro.errors import ProtocolError


class TestFilterEntry:
    def test_contains(self):
        entry = FilterEntry(asid=7, base=0x1000, bound=0x2000)
        assert entry.contains(0x1000)
        assert entry.contains(0x1FFF)
        assert not entry.contains(0x2000)
        assert not entry.contains(0xFFF)

    def test_asid_must_fit_16_bits(self):
        with pytest.raises(ProtocolError):
            FilterEntry(asid=1 << 16, base=0, bound=1)

    def test_empty_region_rejected(self):
        with pytest.raises(ProtocolError):
            FilterEntry(asid=1, base=0x1000, bound=0x1000)


class TestPacketFilter:
    def test_insert_and_match(self):
        filt = PacketFilter()
        filt.insert(7, 0x10000, 0x20000)
        entry = filt.match(0x10040)
        assert entry is not None and entry.asid == 7

    def test_miss_returns_none(self):
        filt = PacketFilter()
        filt.insert(7, 0x10000, 0x20000)
        assert filt.match(0x30000) is None

    def test_multiple_processes(self):
        filt = PacketFilter()
        filt.insert(7, 0x10000, 0x20000)
        filt.insert(10, 0x20000, 0x30000)
        assert filt.match(0x10000).asid == 7
        assert filt.match(0x20000).asid == 10

    def test_overlap_rejected(self):
        filt = PacketFilter()
        filt.insert(7, 0x10000, 0x20000)
        with pytest.raises(ProtocolError):
            filt.insert(8, 0x18000, 0x28000)

    def test_reinsert_same_asid_replaces(self):
        filt = PacketFilter()
        filt.insert(7, 0x10000, 0x20000)
        filt.insert(7, 0x40000, 0x50000)
        assert filt.match(0x40000).asid == 7
        assert filt.num_entries == 1

    def test_remove(self):
        filt = PacketFilter()
        filt.insert(7, 0x10000, 0x20000)
        filt.remove(7)
        assert filt.match(0x10000) is None
        with pytest.raises(ProtocolError):
            filt.remove(7)

    def test_capacity_enforced(self):
        filt = PacketFilter(max_entries=2)
        filt.insert(1, 0x10000, 0x11000)
        filt.insert(2, 0x20000, 0x21000)
        with pytest.raises(ProtocolError):
            filt.insert(3, 0x30000, 0x31000)

    def test_storage_cost_is_18_bytes_per_entry(self):
        """The paper: 18 KB of SRAM supports 1024 processes."""
        assert ENTRY_BYTES == 18
        filt = PacketFilter(max_entries=1024)
        assert filt.capacity_bytes == 18 * 1024
        filt.insert(1, 0x10000, 0x11000)
        assert filt.storage_bytes == 18

    @given(st.integers(min_value=0, max_value=0xFFFF),
           st.integers(min_value=0, max_value=1 << 40),
           st.integers(min_value=1, max_value=1 << 20))
    def test_match_boundary_property(self, asid, base, length):
        filt = PacketFilter()
        filt.insert(asid, base, base + length)
        assert filt.match(base) is not None
        assert filt.match(base + length - 1) is not None
        assert filt.match(base + length) is None
        if base > 0:
            assert filt.match(base - 1) is None
