"""FaultPlan/FaultEvent validation and seeded plan generation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.faults import FaultEvent, FaultPlan, generate_fault_plan


class TestFaultEvent:
    def test_valid_kinds_only(self):
        with pytest.raises(ConfigError):
            FaultEvent("meteor_strike", at_ns=10.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent("device_fail", at_ns=-1.0)

    def test_stall_needs_duration(self):
        with pytest.raises(ConfigError):
            FaultEvent("device_stall", at_ns=10.0, duration_ns=0.0)

    def test_poison_needs_range(self):
        with pytest.raises(ConfigError):
            FaultEvent("poison", at_ns=10.0, base=0x1000, size=0)

    def test_until_ns(self):
        event = FaultEvent("device_stall", at_ns=10.0, duration_ns=5.0)
        assert event.until_ns == 15.0


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(events=(
            FaultEvent("device_fail", at_ns=50.0, device=1),
            FaultEvent("device_stall", at_ns=10.0, device=0,
                       duration_ns=5.0),
        ))
        assert [e.at_ns for e in plan.events] == [10.0, 50.0]

    def test_none_is_empty(self):
        assert FaultPlan.none().empty
        assert not FaultPlan(events=(
            FaultEvent("device_fail", at_ns=1.0),
        )).empty

    def test_of_kind_filters(self):
        plan = FaultPlan(events=(
            FaultEvent("device_fail", at_ns=1.0, device=0),
            FaultEvent("link_flap", at_ns=2.0, device=1, duration_ns=3.0),
        ))
        assert len(plan.of_kind("device_fail")) == 1
        assert plan.of_kind("poison") == ()

    def test_validate_rejects_out_of_range_device(self):
        plan = FaultPlan(events=(
            FaultEvent("device_fail", at_ns=1.0, device=7),
        ))
        with pytest.raises(ConfigError):
            plan.validate_against(4)

    def test_validate_rejects_duplicate_kills(self):
        plan = FaultPlan(events=(
            FaultEvent("device_fail", at_ns=1.0, device=1),
            FaultEvent("device_fail", at_ns=2.0, device=1),
        ))
        with pytest.raises(ConfigError):
            plan.validate_against(4)

    def test_validate_requires_a_survivor(self):
        plan = FaultPlan(events=(
            FaultEvent("device_fail", at_ns=1.0, device=0),
            FaultEvent("device_fail", at_ns=2.0, device=1),
        ))
        with pytest.raises(ConfigError):
            plan.validate_against(2)
        assert plan.validate_against(3) is plan


class TestGeneratePlan:
    def test_deterministic_for_seed(self):
        first = generate_fault_plan(np.random.default_rng(7), 1e6, 4,
                                    kill_rate_per_s=2e3,
                                    stall_rate_per_s=5e3,
                                    flap_rate_per_s=5e3)
        second = generate_fault_plan(np.random.default_rng(7), 1e6, 4,
                                     kill_rate_per_s=2e3,
                                     stall_rate_per_s=5e3,
                                     flap_rate_per_s=5e3)
        assert first == second

    def test_seed_changes_plan(self):
        plans = [generate_fault_plan(np.random.default_rng(seed), 1e6, 4,
                                     stall_rate_per_s=1e4)
                 for seed in (1, 2)]
        assert plans[0] != plans[1]

    def test_zero_rates_give_empty_plan(self):
        assert generate_fault_plan(np.random.default_rng(1), 1e6, 4).empty

    def test_generated_plan_validates(self):
        for seed in range(8):
            plan = generate_fault_plan(np.random.default_rng(seed), 1e6, 4,
                                       kill_rate_per_s=5e3,
                                       stall_rate_per_s=5e3,
                                       flap_rate_per_s=5e3)
            plan.validate_against(4)

    def test_max_kills_caps_and_keeps_survivor(self):
        plan = generate_fault_plan(np.random.default_rng(3), 1e6, 2,
                                   kill_rate_per_s=1e5)
        assert len(plan.of_kind("device_fail")) <= 1
