"""Partition-scoped faults: blast radius, containment and fail-over.

The containment contract of a partition-scoped fault: only the victim
partition's in-flight work fails (typed ``partition_failure``), the
device stays routable, health marks only ``devN.<partition>`` DOWN,
pinned shards fail over to the spare partition, and every surviving
partition's result bytes are identical to a fault-free run.
"""

import numpy as np
import pytest

from repro.cluster import make_cluster_platform
from repro.errors import ConfigError, LaunchFailed, PoisonError
from repro.faults import (
    DEFAULT_HEARTBEAT_NS,
    DOWN,
    UP,
    FaultEvent,
    FaultPlan,
)
from repro.faults.health import DEGRADED
from repro.host.api import pack_args
from repro.kernels.vecadd import VECADD
from repro.serve import ArrivalSpec, RetryPolicy, ServingEngine, TenantSpec

SPEC = "rt:1,batch:2,spare:1"


def _armed(events, num_devices=2, partitions=SPEC):
    platform = make_cluster_platform(num_devices=num_devices,
                                     backend="batched",
                                     partitions=partitions)
    injector = platform.runtime.arm_faults(FaultPlan(events=tuple(events)))
    return platform, injector


def _pinned_vecadd(runtime, partition, n=2048):
    a = (np.arange(n) * 3).astype(np.int64)
    addr_a = runtime.alloc_array(a, partition=partition)
    addr_b = runtime.alloc_array(a[::-1].copy(), partition=partition)
    addr_c = runtime.alloc(a.nbytes, partition=partition)
    kid = runtime.register_kernel(VECADD, name=f"v.{partition}")
    return a, addr_a, addr_b, addr_c, kid


# ---------------------------------------------------------------------------
# plan validation
# ---------------------------------------------------------------------------

class TestPlanValidation:
    def test_partition_scoped_link_flap_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent("link_flap", at_ns=10.0, device=0,
                       duration_ns=100.0, partition="rt")

    def test_partition_scoped_events_need_partitioned_cluster(self):
        platform = make_cluster_platform(num_devices=2, backend="batched")
        plan = FaultPlan(events=(
            FaultEvent("device_fail", at_ns=10.0, device=0, partition="rt"),
        ))
        with pytest.raises(ConfigError):
            platform.runtime.arm_faults(plan)

    def test_partition_scoped_events_validate_partition_name(self):
        platform = make_cluster_platform(num_devices=2, backend="batched",
                                         partitions=SPEC)
        plan = FaultPlan(events=(
            FaultEvent("device_fail", at_ns=10.0, device=0,
                       partition="nope"),
        ))
        with pytest.raises(ConfigError):
            platform.runtime.arm_faults(plan)

    def test_duplicate_partition_kill_rejected(self):
        plan = FaultPlan(events=(
            FaultEvent("device_fail", at_ns=10.0, device=0,
                       partition="rt"),
            FaultEvent("device_fail", at_ns=20.0, device=0,
                       partition="rt"),
        ))
        with pytest.raises(ConfigError):
            plan.validate_against(2)

    def test_partition_kills_do_not_count_against_survivor_rule(self):
        # killing one partition on every device still leaves the cluster
        # serving: whole-device uniqueness/survivor checks don't apply
        plan = FaultPlan(events=(
            FaultEvent("device_fail", at_ns=10.0, device=0, partition="rt"),
            FaultEvent("device_fail", at_ns=10.0, device=1, partition="rt"),
        ))
        assert len(plan.events) == 2


# ---------------------------------------------------------------------------
# kill containment at the cluster tier
# ---------------------------------------------------------------------------

class TestPartitionKill:
    def test_kill_marks_partition_down_device_stays_routable(self):
        platform, injector = _armed(
            [FaultEvent("device_fail", at_ns=100.0, device=0,
                        partition="batch")]
        )
        runtime = platform.runtime
        runtime.sim.run()
        health = injector.health
        assert health.partition_state(0, "batch") == DOWN
        assert health.partition_state(0, "rt") == UP
        assert health.state(0) == UP
        assert runtime.scheduler.routable[0]
        stats = platform.stats
        assert stats.get("fault.partition_kills") == 1
        assert stats.get("fault.partition_detections") == 1
        assert stats.get("fault.device_kills") == 0

    def test_detection_is_heartbeat_quantized(self):
        platform, injector = _armed(
            [FaultEvent("device_fail", at_ns=123.0, device=0,
                        partition="batch")]
        )
        platform.runtime.sim.run()
        transition = [t for t in injector.health.partition_transitions
                      if t[1] == 0 and t[2] == "batch" and t[4] == DOWN][0]
        assert transition[0] == injector.epoch_ns + DEFAULT_HEARTBEAT_NS

    def test_in_flight_launch_in_victim_partition_fails_typed(self):
        platform, _ = _armed(
            [FaultEvent("device_fail", at_ns=50.0, device=0,
                        partition="batch")],
            num_devices=1,
        )
        runtime = platform.runtime
        a, addr_a, addr_b, addr_c, kid = _pinned_vecadd(runtime, "batch")
        with pytest.raises(LaunchFailed) as excinfo:
            runtime.launch_kernel(kid, addr_a, addr_a + a.nbytes,
                                  args=pack_args(addr_b, addr_c))
        assert excinfo.value.reason == "partition_failure"

    def test_survivor_partition_bytes_identical_to_fault_free(self):
        results = []
        for events in ((), (FaultEvent("device_fail", at_ns=1.0, device=0,
                                       partition="batch"),)):
            platform, _ = _armed(events, num_devices=1)
            runtime = platform.runtime
            a, addr_a, addr_b, addr_c, kid = _pinned_vecadd(runtime, "rt")
            runtime.sim.run()          # let the kill land first
            runtime.launch_kernel(kid, addr_a, addr_a + a.nbytes,
                                  args=pack_args(addr_b, addr_c))
            results.append(bytes(
                runtime.physical.read_bytes(addr_c, a.nbytes)
            ))
        assert results[0] == results[1]
        expected = ((np.arange(2048) * 3)
                    + (np.arange(2048)[::-1] * 3)).astype(np.int64)
        assert results[0] == expected.tobytes()

    def test_pinned_shards_fail_over_to_spare(self):
        platform, _ = _armed(
            [FaultEvent("device_fail", at_ns=100.0, device=0,
                        partition="batch")]
        )
        runtime = platform.runtime
        arr = np.arange(512, dtype=np.int64)
        addr = runtime.alloc_array(arr, partition="batch")
        shard = runtime.shard_map(addr)
        assert shard.active_partition == "batch"
        runtime.sim.run()
        assert shard.partition == "batch"          # pin is immutable
        assert shard.active_partition == "spare"   # remap moved it
        assert platform.stats.get("recovery.partition_failovers") >= 1

    def test_failover_without_spare_picks_another_partition(self):
        platform, _ = _armed(
            [FaultEvent("device_fail", at_ns=100.0, device=0,
                        partition="b")],
            partitions="a:1,b:1",
        )
        runtime = platform.runtime
        addr = runtime.alloc_array(np.arange(64, dtype=np.int64),
                                   partition="b")
        runtime.sim.run()
        assert runtime.shard_map(addr).active_partition == "a"


# ---------------------------------------------------------------------------
# stall / poison scoping
# ---------------------------------------------------------------------------

class TestPartitionStallAndPoison:
    def test_stall_scopes_to_partition(self):
        platform, injector = _armed(
            [FaultEvent("device_stall", at_ns=0.0, device=0,
                        duration_ns=5_000.0, partition="batch")],
            num_devices=1,
        )
        runtime = platform.runtime
        runtime.sim.run()
        assert injector.health.partition_state(0, "batch") == UP  # recovered
        assert platform.stats.get("fault.partition_stall_windows") == 1
        # the victim partition's issue path is delayed; the other is not
        assert injector.delay_issue(0, 10.0, partition="rt") == 10.0
        injector._part_stall_until[(0, "batch")] = 1_000.0
        assert injector.delay_issue(0, 10.0, partition="batch") == 1_000.0

    def test_stall_marks_degraded_then_up(self):
        platform, injector = _armed(
            [FaultEvent("device_stall", at_ns=0.0, device=0,
                        duration_ns=5_000.0, partition="batch")],
            num_devices=1,
        )
        platform.runtime.sim.run()
        states = [t[4] for t in injector.health.partition_transitions
                  if t[2] == "batch"]
        assert states == [DEGRADED, UP]

    def test_poison_scopes_to_partition(self):
        platform, injector = _armed([], num_devices=1)
        runtime = platform.runtime
        a, addr_a, addr_b, addr_c, kid = _pinned_vecadd(runtime, "rt")
        injector._on_poison(FaultEvent(
            "poison", at_ns=0.0, device=0, base=addr_a, size=a.nbytes,
            partition="batch",
        ))
        # poison scoped to "batch" never hits an "rt"-pinned launch
        runtime.launch_kernel(kid, addr_a, addr_a + a.nbytes,
                              args=pack_args(addr_b, addr_c))
        injector._on_poison(FaultEvent(
            "poison", at_ns=0.0, device=0, base=addr_a, size=a.nbytes,
            partition="rt",
        ))
        with pytest.raises(PoisonError):
            runtime.launch_kernel(kid, addr_a, addr_a + a.nbytes,
                                  args=pack_args(addr_b, addr_c))


# ---------------------------------------------------------------------------
# health monitor partition view
# ---------------------------------------------------------------------------

class TestPartitionHealth:
    def test_device_down_implies_partitions_down(self):
        platform, injector = _armed(
            [FaultEvent("device_fail", at_ns=50.0, device=1)]
        )
        platform.runtime.sim.run()
        health = injector.health
        assert health.state(1) == DOWN
        assert health.partition_state(1, "rt") == DOWN
        assert health.partition_state(1, "batch") == DOWN
        assert health.partition_state(0, "rt") == UP

    def test_render_includes_partition_states(self):
        platform, injector = _armed(
            [FaultEvent("device_fail", at_ns=50.0, device=0,
                        partition="batch")]
        )
        platform.runtime.sim.run()
        assert "dev0.batch:down" in injector.health.render().lower()

    def test_snapshot_includes_partition_health(self):
        platform, injector = _armed(
            [FaultEvent("device_fail", at_ns=50.0, device=0,
                        partition="batch")]
        )
        platform.runtime.sim.run()
        snap = injector.snapshot()
        assert snap["partition_health"]["dev0.batch"] == DOWN


# ---------------------------------------------------------------------------
# serving-tier containment (end to end)
# ---------------------------------------------------------------------------

def _serve(events, monitoring=None):
    platform = make_cluster_platform(num_devices=2, backend="batched",
                                     partitions=SPEC)
    injector = (platform.runtime.arm_faults(FaultPlan(events=tuple(events)))
                if events else None)
    tenants = [
        TenantSpec("rt", "kvstore",
                   arrivals=ArrivalSpec("poisson", rate_rps=2e6,
                                        requests=32),
                   qos_class="interactive", slo_ns=150_000.0, size=256,
                   placement="replicated", partition="rt",
                   retry=RetryPolicy(max_retries=2, backoff_ns=500.0)),
        TenantSpec("bulk", "vecadd",
                   arrivals=ArrivalSpec("poisson", rate_rps=2e6,
                                        requests=12),
                   qos_class="batch", size=1 << 12, partition="batch",
                   retry=RetryPolicy(max_retries=2, backoff_ns=1_000.0)),
    ]
    engine = ServingEngine(platform, tenants, monitoring=monitoring)
    report = engine.run()
    return platform, engine, injector, report


class TestServingContainment:
    def test_partition_kill_leaves_survivor_bytes_identical(self):
        _, healthy_engine, _, healthy = _serve(())
        platform, engine, _, report = _serve(
            [FaultEvent("device_fail", at_ns=4_000.0, device=0,
                        partition="batch")]
        )
        rt = report.tenant("rt")
        assert rt.correct
        assert rt.accounting_ok
        assert (engine.result_snapshots()["rt"]
                == healthy_engine.result_snapshots()["rt"])
        # the victim tenant recovered via spare-partition fail-over
        bulk = report.tenant("bulk")
        assert bulk.accounting_ok
        assert platform.stats.get("recovery.partition_failovers") >= 1

    def test_incident_bundle_reports_partition_blast_radius(self):
        _, engine, injector, _ = _serve(
            [FaultEvent("device_fail", at_ns=4_000.0, device=0,
                        partition="batch")],
            monitoring=True,
        )
        assert engine.reporter.bundles
        radius = {}
        for bundle in engine.reporter.bundles:
            radius.update(bundle.get("partition_blast_radius", {}))
        assert set(radius) == {"dev0.batch"}
        from repro.obs.incidents import grade_against_plan
        grade = grade_against_plan(injector, engine.monitor.alerts)
        assert grade["recall"] == 1.0

    def test_unpartitioned_bundles_lack_blast_radius_key(self):
        platform = make_cluster_platform(num_devices=2, backend="batched")
        platform.runtime.arm_faults(FaultPlan(events=(
            FaultEvent("device_fail", at_ns=4_000.0, device=1),
        )))
        tenants = [TenantSpec(
            "kv", "kvstore",
            arrivals=ArrivalSpec("poisson", rate_rps=2e6, requests=16),
            size=256, retry=RetryPolicy(max_retries=2, backoff_ns=500.0),
        )]
        engine = ServingEngine(platform, tenants, monitoring=True)
        engine.run()
        for bundle in engine.reporter.bundles:
            assert "partition_blast_radius" not in bundle
