"""Fault injection + recovery at the cluster tier: kills, detection,
typed failures, shard re-replication, stalls, flaps, poison, timeouts."""

import numpy as np
import pytest

from repro.cluster import make_cluster_platform
from repro.cluster.placement import ShardMap
from repro.cluster.runtime import resolve_launch_timeout
from repro.errors import (
    ConfigError,
    DeviceUnavailable,
    LaunchFailed,
    PoisonError,
)
from repro.faults import (
    DEFAULT_HEARTBEAT_NS,
    DOWN,
    UP,
    FaultEvent,
    FaultPlan,
    HealthMonitor,
)
from repro.host.api import pack_args
from repro.kernels.vecadd import VECADD

N = 4096


def _armed_platform(events, num_devices=4, **kwargs):
    platform = make_cluster_platform(num_devices=num_devices,
                                     backend="batched")
    platform.runtime.arm_faults(FaultPlan(events=tuple(events)), **kwargs)
    return platform


def _vecadd_addrs(runtime, n=N, placement=None):
    a = (np.arange(n) * 7).astype(np.int64)
    b = (np.arange(n)[::-1] * 7).astype(np.int64)
    kw = {"placement": placement} if placement else {}
    addr_a = runtime.alloc_array(a, **kw)
    addr_b = runtime.alloc_array(b, **kw)
    addr_c = runtime.alloc(a.nbytes, **kw)
    return a, b, addr_a, addr_b, addr_c


class TestKillAndRecovery:
    def test_in_flight_launch_fails_typed(self):
        platform = _armed_platform(
            [FaultEvent("device_fail", at_ns=50.0, device=1)]
        )
        runtime = platform.runtime
        a, b, addr_a, addr_b, addr_c = _vecadd_addrs(runtime)
        with pytest.raises(LaunchFailed) as excinfo:
            runtime.run_kernel(VECADD, addr_a, addr_a + a.nbytes,
                               args=pack_args(addr_b, addr_c))
        assert excinfo.value.device == 1
        assert excinfo.value.reason == "device_failure"
        stats = platform.stats
        assert stats.get("fault.device_kills") == 1
        assert stats.get("fault.detections") == 1
        assert stats.get("recovery.failed_launches") >= 1

    def test_detection_is_heartbeat_quantized(self):
        platform = _armed_platform(
            [FaultEvent("device_fail", at_ns=123.0, device=2)]
        )
        runtime = platform.runtime
        faults = runtime.faults
        runtime.sim.run()
        assert faults.health.state(2) == DOWN
        transition = [t for t in faults.health.transitions
                      if t[1] == 2 and t[3] == DOWN][0]
        assert transition[0] == faults.epoch_ns + DEFAULT_HEARTBEAT_NS

    def test_post_kill_launch_avoids_dead_device(self):
        platform = _armed_platform(
            [FaultEvent("device_fail", at_ns=0.0, device=1)]
        )
        runtime = platform.runtime
        runtime.sim.run()                 # detect + recover, nothing in flight
        a, b, addr_a, addr_b, addr_c = _vecadd_addrs(runtime)
        instance = runtime.run_kernel(VECADD, addr_a, addr_a + a.nbytes,
                                      args=pack_args(addr_b, addr_c))
        got = runtime.read_array(addr_c, np.int64, N)
        assert np.array_equal(got, a + b)
        assert instance is not None
        assert not runtime.scheduler.routable[1]

    def test_replicated_placement_fails_over_without_recopy(self):
        platform = _armed_platform(
            [FaultEvent("device_fail", at_ns=0.0, device=1)]
        )
        runtime = platform.runtime
        _vecadd_addrs(runtime, placement="replicated")
        runtime.sim.run()
        assert platform.stats.get("recovery.failovers") >= 1
        assert platform.stats.get("recovery.recopy_bytes") == 0

    def test_sharded_placement_pays_recopy(self):
        platform = _armed_platform(
            [FaultEvent("device_fail", at_ns=0.0, device=1)]
        )
        runtime = platform.runtime
        _vecadd_addrs(runtime, placement="blocked")
        runtime.sim.run()
        assert platform.stats.get("recovery.remapped_shards") >= 1
        assert platform.stats.get("recovery.recopy_bytes") > 0

    def test_arming_twice_rejected(self):
        platform = _armed_platform([])
        with pytest.raises(ConfigError):
            platform.runtime.arm_faults(FaultPlan.none())


class TestSchedulerRouting:
    def test_set_routable_updates_count(self):
        scheduler = make_cluster_platform(num_devices=4).runtime.scheduler
        assert scheduler.num_routable == 4
        assert scheduler.set_routable(2, False)
        assert scheduler.num_routable == 3
        assert not scheduler.set_routable(2, False)   # idempotent
        assert scheduler.set_routable(2, True)
        assert scheduler.num_routable == 4

    def test_all_down_raises_device_unavailable(self):
        platform = make_cluster_platform(num_devices=2, backend="batched")
        runtime = platform.runtime
        a, b, addr_a, addr_b, addr_c = _vecadd_addrs(runtime)
        for device in range(2):
            runtime.scheduler.set_routable(device, False)
        with pytest.raises(DeviceUnavailable):
            runtime.run_kernel(VECADD, addr_a, addr_a + a.nbytes,
                               args=pack_args(addr_b, addr_c))


class TestStallFlapPoison:
    def test_stall_delays_but_stays_correct(self):
        def run(events):
            platform = _armed_platform(events)
            runtime = platform.runtime
            a, b, addr_a, addr_b, addr_c = _vecadd_addrs(runtime)
            instance = runtime.run_kernel(VECADD, addr_a, addr_a + a.nbytes,
                                          args=pack_args(addr_b, addr_c))
            got = runtime.read_array(addr_c, np.int64, N)
            assert np.array_equal(got, a + b)
            return instance.runtime_ns, platform.stats

        healthy_ns, _ = run([])
        stalled_ns, stats = run([
            FaultEvent("device_stall", at_ns=0.0, device=d,
                       duration_ns=5_000.0)
            for d in range(4)
        ])
        assert stalled_ns > healthy_ns
        assert stats.get("fault.stall_delays") >= 1

    def test_link_flap_charges_retries(self):
        def run(events):
            platform = _armed_platform(events)
            runtime = platform.runtime
            a, b, addr_a, addr_b, addr_c = _vecadd_addrs(runtime)
            runtime.run_kernel(VECADD, addr_a, addr_a + a.nbytes,
                               args=pack_args(addr_b, addr_c))
            # wall completion: retried packets delay transfers, not the
            # device-side compute time
            return platform.sim.now, platform.stats

        healthy_ns, _ = run([])
        flapped_ns, stats = run([
            FaultEvent("link_flap", at_ns=0.0, device=d,
                       duration_ns=100_000.0)
            for d in range(4)
        ])
        assert flapped_ns > healthy_ns
        assert stats.get("fault.link_flaps") >= 1
        assert (stats.get("switch.link_retries")
                + stats.get("cxl.link_retries")) >= 1

    def test_poisoned_pool_raises_typed(self):
        platform = make_cluster_platform(num_devices=4, backend="batched")
        runtime = platform.runtime
        a, b, addr_a, addr_b, addr_c = _vecadd_addrs(runtime)
        runtime.arm_faults(FaultPlan(events=(
            FaultEvent("poison", at_ns=0.0, base=addr_a, size=64),
        )))
        runtime.sim.run()
        with pytest.raises(PoisonError) as excinfo:
            runtime.run_kernel(VECADD, addr_a, addr_a + a.nbytes,
                               args=pack_args(addr_b, addr_c))
        assert excinfo.value.base == addr_a
        assert platform.stats.get("fault.poisoned_launches") == 1

    def test_cleared_poison_launches_again(self):
        platform = make_cluster_platform(num_devices=4, backend="batched")
        runtime = platform.runtime
        a, b, addr_a, addr_b, addr_c = _vecadd_addrs(runtime)
        runtime.arm_faults(FaultPlan(events=(
            FaultEvent("poison", at_ns=0.0, base=addr_a, size=64),
        )))
        runtime.sim.run()
        runtime.faults.clear_poison()
        got_instance = runtime.run_kernel(VECADD, addr_a, addr_a + a.nbytes,
                                          args=pack_args(addr_b, addr_c))
        assert got_instance is not None
        got = runtime.read_array(addr_c, np.int64, N)
        assert np.array_equal(got, a + b)


class TestLaunchTimeout:
    def test_resolver_precedence(self, monkeypatch):
        assert resolve_launch_timeout(None) == 0.0
        monkeypatch.setenv("REPRO_LAUNCH_TIMEOUT_NS", "2500")
        assert resolve_launch_timeout(None) == 2500.0
        assert resolve_launch_timeout(100.0) == 100.0   # explicit wins

    def test_resolver_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_LAUNCH_TIMEOUT_NS", "soon")
        with pytest.raises(ConfigError, match="REPRO_LAUNCH_TIMEOUT_NS"):
            resolve_launch_timeout(None)
        with pytest.raises(ConfigError):
            resolve_launch_timeout(-5.0)

    def test_watchdog_fails_slow_launch(self):
        platform = make_cluster_platform(num_devices=4, backend="batched")
        runtime = platform.runtime
        runtime.launch_timeout_ns = 1.0   # far below any real launch
        a, b, addr_a, addr_b, addr_c = _vecadd_addrs(runtime)
        with pytest.raises(LaunchFailed) as excinfo:
            runtime.run_kernel(VECADD, addr_a, addr_a + a.nbytes,
                               args=pack_args(addr_b, addr_c))
        assert excinfo.value.reason == "timeout"
        assert platform.stats.get("fault.launch_timeouts") == 1


class TestHealthMonitor:
    def test_down_is_terminal(self):
        health = HealthMonitor(2)
        assert health.mark(0, DOWN, 10.0)
        assert not health.mark(0, UP, 20.0)
        assert health.state(0) == DOWN
        assert health.routable_devices == [1]
        assert health.down_devices == [0]

    def test_render_lists_states(self):
        health = HealthMonitor(2)
        health.mark(1, DOWN, 5.0)
        text = health.render()
        assert "dev0:up" in text and "dev1:down" in text


class TestShardMapFailOver:
    def test_replicated_fail_over_is_free(self):
        shard = ShardMap(base=0, size=1 << 16, placement="replicated",
                         num_devices=4, shard_bytes=4096)
        assert shard.fail_over(1, 2) == 0
        assert shard.owner_of(0) == shard.owner_of(0)   # still valid

    def test_blocked_fail_over_moves_bytes_and_remaps(self):
        shard = ShardMap(base=0, size=1 << 16, placement="blocked",
                         num_devices=4, shard_bytes=4096)
        victim_addr = next(
            addr for addr in range(0, 1 << 16, 4096)
            if shard.owner_of(addr) == 1
        )
        expected = shard.device_bytes(1)
        assert expected > 0
        assert shard.fail_over(1, 2) == expected
        assert shard.owner_of(victim_addr) == 2
        assert shard.device_bytes(1) == 0      # remap moved residency
