"""Serving-tier resilience: retries, hedging, drain, accounting identity,
and byte-level determinism under fault plans."""

import pytest

from repro.cluster import make_cluster_platform
from repro.errors import ConfigError
from repro.faults import FaultEvent, FaultPlan
from repro.serve import (
    ArrivalSpec,
    AutoscalePolicy,
    RetryPolicy,
    ServingEngine,
    TenantSpec,
)

KILL_MID_TRAFFIC = FaultPlan(events=(
    FaultEvent("device_fail", at_ns=3_000.0, device=1),
))


def _scan_tenant(retries=0, placement=None, requests=16,
                 slo_ns=5_000_000.0):
    return TenantSpec(
        "scan", "olap",
        arrivals=ArrivalSpec("poisson", rate_rps=2e6, requests=requests),
        qos_class="interactive", slo_ns=slo_ns, size=1 << 17, slices=4,
        placement=placement,
        retry=RetryPolicy(max_retries=retries, backoff_ns=500.0,
                          jitter_ns=200.0),
    )


def _run(tenants, plan=None, num_devices=4, **engine_kwargs):
    platform = make_cluster_platform(num_devices=num_devices,
                                     backend="batched")
    if plan is not None:
        platform.runtime.arm_faults(plan)
    engine = ServingEngine(platform, tenants, **engine_kwargs)
    report = engine.run()
    return platform, engine, report


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter_ns=-1.0)

    def test_exponential_backoff(self):
        policy = RetryPolicy(max_retries=3, backoff_ns=100.0,
                             backoff_factor=2.0)
        class NoJitter:
            def uniform(self, lo, hi):
                return 0.0
        assert policy.delay_ns(0, NoJitter()) == 100.0
        assert policy.delay_ns(2, NoJitter()) == 400.0


class TestFailureAccounting:
    def test_no_retry_fails_stranded_requests(self):
        platform, _, report = _run([_scan_tenant(retries=0)],
                                   plan=KILL_MID_TRAFFIC)
        tenant = report.tenant("scan")
        assert tenant.failed > 0
        assert tenant.served + tenant.failed == tenant.offered
        assert tenant.accounting_ok
        assert tenant.correct
        assert platform.stats.get("recovery.failed_launches") >= 1

    def test_retries_recover_everything(self):
        _, _, report = _run([_scan_tenant(retries=3)],
                            plan=KILL_MID_TRAFFIC)
        tenant = report.tenant("scan")
        assert tenant.failed == 0
        assert tenant.served == tenant.offered
        assert tenant.retried > 0
        assert tenant.accounting_ok
        assert tenant.correct

    def test_retry_beats_no_retry_under_kill(self):
        """The acceptance bar: replicated + deadline-aware retries strictly
        above the no-retry baseline when a device dies mid-traffic."""
        results = {}
        for retries in (0, 3):
            _, _, report = _run(
                [_scan_tenant(retries=retries, placement="replicated")],
                plan=KILL_MID_TRAFFIC,
            )
            results[retries] = report.tenant("scan")
        assert results[3].served > results[0].served
        assert results[3].slo_attainment > results[0].slo_attainment

    def test_poison_is_terminal_not_retried(self):
        platform = make_cluster_platform(num_devices=4, backend="batched")
        runtime = platform.runtime
        spec = _scan_tenant(retries=3, requests=8)
        engine = ServingEngine(platform, [spec])
        # poison the tenant's data region before traffic starts
        workload = engine.tenants["scan"].workload
        runtime.arm_faults(FaultPlan(events=(
            FaultEvent("poison", at_ns=0.0, base=workload.addr_col,
                       size=workload.column.nbytes),
        )))
        report = engine.run()
        tenant = report.tenant("scan")
        assert tenant.failed == tenant.offered
        assert tenant.retried == 0
        assert tenant.accounting_ok

    def test_accounting_identity_render_columns(self):
        _, _, report = _run([_scan_tenant(retries=0)],
                            plan=KILL_MID_TRAFFIC)
        text = report.render()
        assert "fail" in text and "retry" in text


class TestHedging:
    STALLS = FaultPlan(events=(
        FaultEvent("device_stall", at_ns=500.0, device=0,
                   duration_ns=50_000.0),
        FaultEvent("device_stall", at_ns=500.0, device=1,
                   duration_ns=50_000.0),
    ))

    def _kv(self, hedge_delay_ns):
        return TenantSpec(
            "kv", "kvstore",
            arrivals=ArrivalSpec("poisson", rate_rps=1e6, requests=40),
            qos_class="interactive", slo_ns=200_000.0, size=512,
            placement="replicated",
            retry=RetryPolicy(max_retries=2, backoff_ns=500.0),
            hedge_delay_ns=hedge_delay_ns,
        )

    def test_hedges_fire_and_win_under_stalls(self):
        _, _, report = _run([self._kv(1_000.0)], plan=self.STALLS)
        tenant = report.tenant("kv")
        assert tenant.hedged > 0
        assert tenant.hedged_won > 0
        assert tenant.served == tenant.offered
        assert tenant.accounting_ok
        assert tenant.correct

    def test_zero_delay_disables_hedging(self):
        _, _, report = _run([self._kv(0.0)], plan=self.STALLS)
        tenant = report.tenant("kv")
        assert tenant.hedged == 0
        assert tenant.correct

    def test_non_replicated_tenant_never_hedges(self):
        spec = TenantSpec(
            "kv", "kvstore",
            arrivals=ArrivalSpec("poisson", rate_rps=1e6, requests=20),
            qos_class="interactive", slo_ns=200_000.0, size=512,
            placement="interleaved", hedge_delay_ns=1_000.0,
        )
        _, _, report = _run([spec], plan=self.STALLS)
        assert report.tenant("kv").hedged == 0


class TestDrain:
    def test_planned_drain_quiesces_device(self):
        platform = make_cluster_platform(num_devices=4, backend="batched")
        platform.runtime.arm_faults(FaultPlan.none())
        engine = ServingEngine(platform, [_scan_tenant(requests=30)])
        engine.schedule_drain(3, at_ns=2_000.0)
        report = engine.run()
        tenant = report.tenant("scan")
        assert tenant.served == tenant.offered
        assert tenant.correct
        assert platform.stats.get("recovery.drains_started") == 1
        assert platform.stats.get("recovery.drains_completed") == 1
        assert not platform.runtime.scheduler.routable[3]
        assert platform.runtime.scheduler.outstanding[3] == 0
        assert "dev3:draining" in platform.runtime.faults.health.render()

    def test_drain_validates_device(self):
        platform = make_cluster_platform(num_devices=2, backend="batched")
        engine = ServingEngine(platform, [_scan_tenant(requests=4)])
        with pytest.raises(ConfigError):
            engine.schedule_drain(7, at_ns=0.0)

    def test_autoscale_drain_cycles(self):
        platform = make_cluster_platform(num_devices=4, backend="batched")
        spec = TenantSpec(
            "scan", "olap",
            arrivals=ArrivalSpec("poisson", rate_rps=2e5, requests=40),
            qos_class="interactive", slo_ns=50_000_000.0, size=1 << 16,
            slices=4,
        )
        policy = AutoscalePolicy(enabled=True, min_devices=1,
                                 interval_ns=10_000.0, high_watermark=0.7,
                                 low_watermark=0.3, drain=True)
        engine = ServingEngine(platform, [spec], autoscale=policy)
        report = engine.run()
        tenant = report.tenant("scan")
        assert tenant.served == tenant.offered
        assert tenant.correct
        started = platform.stats.get("recovery.drains_started")
        completed = platform.stats.get("recovery.drains_completed")
        assert started >= 1
        assert completed >= 1


class TestDeterminism:
    def _kill_run(self):
        platform, engine, report = _run(
            [_scan_tenant(retries=3, placement="replicated")],
            plan=KILL_MID_TRAFFIC,
        )
        return (engine.result_snapshots(), report.aggregate.samples,
                dict(platform.stats.snapshot()))

    def test_same_seed_same_plan_byte_identical(self):
        first, second = self._kill_run(), self._kill_run()
        assert first[0] == second[0]       # result-region bytes
        assert first[1] == second[1]       # latency samples
        assert first[2] == second[2]       # every counter

    def test_zero_fault_plan_identical_to_disabled(self):
        def run(arm):
            platform = make_cluster_platform(num_devices=4,
                                             backend="batched")
            if arm:
                platform.runtime.arm_faults(FaultPlan.none())
            engine = ServingEngine(platform, [_scan_tenant(requests=16)])
            report = engine.run()
            return (engine.result_snapshots(), report.aggregate.samples,
                    platform.sim.now,
                    {k: v for k, v in platform.stats.snapshot().items()
                     if not k.startswith("fault.")})
        armed, disabled = run(True), run(False)
        assert armed == disabled

    def test_different_seed_changes_fault_timing_outcome(self):
        from repro.config import ClusterConfig

        def run(seed):
            platform = make_cluster_platform(
                num_devices=4, backend="batched",
                cluster=ClusterConfig(num_devices=4, seed=seed),
            )
            platform.runtime.arm_faults(KILL_MID_TRAFFIC)
            report = ServingEngine(
                platform, [_scan_tenant(retries=3)]
            ).run()
            return report.aggregate.samples
        assert run(1) != run(2)
