"""Tests for the RISC-V/RVV assembler."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble, assemble_kernel, parse_operand
from repro.isa.encoding import FUnit, OpClass


class TestOperandParsing:
    @pytest.mark.parametrize("token,bank,index", [
        ("x0", "x", 0), ("x31", "x", 31), ("f7", "f", 7), ("v12", "v", 12),
        ("zero", "x", 0), ("ra", "x", 1), ("sp", "x", 2), ("a0", "x", 10),
        ("t0", "x", 5), ("t6", "x", 31), ("s11", "x", 27), ("fa0", "f", 10),
    ])
    def test_registers(self, token, bank, index):
        op = parse_operand(token)
        assert (op.kind, op.bank, op.index) == ("reg", bank, index)

    @pytest.mark.parametrize("token,value", [
        ("42", 42), ("-7", -7), ("0x10", 16), ("0xFF", 255), ("0", 0),
    ])
    def test_immediates(self, token, value):
        op = parse_operand(token)
        assert (op.kind, op.imm) == ("imm", value)

    def test_memory_operand(self):
        op = parse_operand("8(x3)")
        assert (op.kind, op.offset, op.base) == ("mem", 8, 3)

    def test_memory_no_offset(self):
        op = parse_operand("(x1)")
        assert (op.kind, op.offset, op.base) == ("mem", 0, 1)

    def test_memory_hex_offset(self):
        op = parse_operand("0x20(a0)")
        assert (op.kind, op.offset, op.base) == ("mem", 32, 10)

    def test_element_width(self):
        op = parse_operand("e64")
        assert (op.kind, op.imm) == ("ew", 64)

    def test_label(self):
        assert parse_operand("loop_1").kind == "label"

    def test_register_index_range(self):
        with pytest.raises(AssemblerError):
            parse_operand("x32")

    def test_garbage_rejected(self):
        with pytest.raises(AssemblerError):
            parse_operand("$%^")


class TestAssemble:
    def test_simple_program(self):
        prog = assemble("li x1, 5\naddi x2, x1, 3\nret")
        assert len(prog) == 3
        assert prog.instructions[0].mnemonic == "li"
        assert prog.instructions[2].op_class is OpClass.RET

    def test_comments_stripped(self):
        prog = assemble("""
            // a comment
            li x1, 5     # trailing
            ret          ; another style
        """)
        assert len(prog) == 2

    def test_labels_resolved(self):
        prog = assemble("""
            li x1, 0
        loop:
            addi x1, x1, 1
            bnez x1, loop
            ret
        """)
        branch = prog.instructions[2]
        assert branch.target == prog.labels["loop"] == 1

    def test_forward_reference(self):
        prog = assemble("""
            beqz x1, end
            li x2, 1
        end:
            ret
        """)
        assert prog.instructions[0].target == 2

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("j nowhere\nret")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a:\nret\na:\nret")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError) as exc:
            assemble("frobnicate x1, x2")
        assert "frobnicate" in str(exc.value)

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("add x1, x2")

    def test_register_usage_computed(self):
        prog = assemble("""
            ld x4, 0(x3)
            vle64.v v2, (x1)
            fadd.d f3, f1, f2
            ret
        """)
        assert prog.usage.int_regs == 5     # x4 highest => 5
        assert prog.usage.float_regs == 4   # f3 highest => 4
        assert prog.usage.vector_regs == 3  # v2 highest => 3

    def test_functional_units_assigned(self):
        prog = assemble("mul x1, x2, x3\nld x4, 0(x1)\nvadd.vv v1, v2, v3\nret")
        assert prog.instructions[0].unit is FUnit.SSFU
        assert prog.instructions[1].unit is FUnit.SLSU
        assert prog.instructions[2].unit is FUnit.VALU

    def test_store_operand_order(self):
        prog = assemble("sd x4, 8(x3)")
        inst = prog.instructions[0]
        assert inst.rs2 == 4 and inst.rs1 == 3 and inst.imm == 8

    def test_amo_operands(self):
        prog = assemble("amoadd.d x4, x5, (x6)")
        inst = prog.instructions[0]
        assert (inst.rd, inst.rs2, inst.rs1) == (4, 5, 6)

    def test_directive_in_plain_assemble_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".body\nret")


class TestAssembleKernel:
    def test_sections(self):
        kernel = assemble_kernel("""
        .init
            ret
        .body
            li x1, 1
            ret
        .final
            ret
        """)
        assert kernel.initializer is not None
        assert kernel.finalizer is not None
        assert len(kernel.bodies) == 1
        assert kernel.static_instruction_count == 4

    def test_multiple_bodies(self):
        kernel = assemble_kernel("""
        .body
            ret
        .body
            li x1, 1
            ret
        """)
        assert len(kernel.bodies) == 2

    def test_bare_program_is_body(self):
        kernel = assemble_kernel("li x1, 1\nret")
        assert len(kernel.bodies) == 1
        assert kernel.initializer is None

    def test_kernel_usage_merges_sections(self):
        kernel = assemble_kernel("""
        .init
            li x9, 0
            ret
        .body
            vadd.vv v5, v1, v2
            ret
        """)
        assert kernel.usage.int_regs == 10
        assert kernel.usage.vector_regs == 6

    def test_no_body_rejected(self):
        with pytest.raises(AssemblerError):
            assemble_kernel(".init\nret")

    def test_duplicate_init_rejected(self):
        with pytest.raises(AssemblerError):
            assemble_kernel(".init\nret\n.body\nret\n.init\nret")

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblerError):
            assemble_kernel(".prologue\nret")


class TestKernelLibrary:
    def test_every_library_kernel_assembles(self):
        from repro.kernels import KERNEL_LIBRARY

        for name, source in KERNEL_LIBRARY.items():
            kernel = assemble_kernel(source, name=name)
            assert kernel.static_instruction_count > 0

    def test_library_kernels_are_register_light(self):
        """The µthread premise: memory-bound kernels need few registers."""
        from repro.kernels import KERNEL_LIBRARY

        for name, source in KERNEL_LIBRARY.items():
            usage = assemble_kernel(source, name=name).usage
            assert usage.int_regs <= 24, name
            assert usage.vector_regs <= 8, name
