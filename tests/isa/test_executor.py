"""Tests for the functional executor: scalar, memory, branch semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.assembler import assemble
from repro.isa.executor import execute
from repro.isa.registers import UThreadRegisters, to_signed64
from repro.mem.physical import PhysicalMemory


class SimpleMemory:
    """Minimal MemoryInterface over a PhysicalMemory (identity mapping)."""

    def __init__(self):
        self.pm = PhysicalMemory()

    def load(self, vaddr, size):
        return self.pm.read_bytes(vaddr, size)

    def store(self, vaddr, data):
        self.pm.write_bytes(vaddr, data)

    def amo(self, op, vaddr, operand, size, is_float):
        import struct
        fmt = {4: "<i", 8: "<q"}[size] if not is_float else {4: "<f", 8: "<d"}[size]
        old = struct.unpack(fmt, self.pm.read_bytes(vaddr, size))[0]
        from repro.mem.scratchpad import _apply_amo
        new = _apply_amo(op, old, operand)
        if not is_float:
            bits = size * 8
            new &= (1 << bits) - 1
            new -= (1 << bits) if new >= (1 << (bits - 1)) else 0
        self.pm.write_bytes(vaddr, struct.pack(fmt, new))
        return old


def run_program(source: str, regs: UThreadRegisters | None = None,
                mem: SimpleMemory | None = None, max_steps: int = 10_000):
    """Execute a program to completion; returns (regs, mem)."""
    prog = assemble(source)
    regs = regs if regs is not None else UThreadRegisters()
    mem = mem if mem is not None else SimpleMemory()
    pc = 0
    for _ in range(max_steps):
        if pc >= len(prog.instructions):
            break
        result = execute(prog.instructions[pc], regs, mem)
        if result.done:
            break
        pc = result.jump_to if result.jump_to is not None else pc + 1
    else:
        raise AssertionError("program did not terminate")
    return regs, mem


class TestScalarArithmetic:
    @pytest.mark.parametrize("source,reg,expected", [
        ("li x1, 5\nli x2, 7\nadd x3, x1, x2", 3, 12),
        ("li x1, 5\nli x2, 7\nsub x3, x1, x2", 3, -2),
        ("li x1, 6\nli x2, 7\nmul x3, x1, x2", 3, 42),
        ("li x1, 45\nli x2, 7\ndiv x3, x1, x2", 3, 6),
        ("li x1, 45\nli x2, 7\nrem x3, x1, x2", 3, 3),
        ("li x1, -45\nli x2, 7\ndiv x3, x1, x2", 3, -6),
        ("li x1, -45\nli x2, 7\nrem x3, x1, x2", 3, -3),
        ("li x1, 12\nandi x2, x1, 10", 2, 8),
        ("li x1, 12\nori x2, x1, 3", 2, 15),
        ("li x1, 12\nxori x2, x1, 10", 2, 6),
        ("li x1, 1\nslli x2, x1, 10", 2, 1024),
        ("li x1, 1024\nsrli x2, x1, 3", 2, 128),
        ("li x1, -16\nsrai x2, x1, 2", 2, -4),
        ("li x1, 3\nli x2, 5\nslt x3, x1, x2", 3, 1),
        ("li x1, -1\nli x2, 5\nsltu x3, x1, x2", 3, 0),   # unsigned -1 is huge
        ("li x1, 7\nmv x2, x1", 2, 7),
        ("li x1, 7\nneg x2, x1", 2, -7),
        ("li x1, 0\nseqz x2, x1", 2, 1),
        ("li x1, 3\nsnez x2, x1", 2, 1),
        ("lui x1, 1", 1, 4096),
    ])
    def test_ops(self, source, reg, expected):
        regs, _ = run_program(source + "\nret")
        assert regs.x[reg] == expected

    def test_x0_hardwired(self):
        regs, _ = run_program("li x0, 99\nadd x0, x0, x0\nret")
        assert regs.x[0] == 0

    def test_div_by_zero_semantics(self):
        regs, _ = run_program("li x1, 5\nli x2, 0\ndiv x3, x1, x2\nret")
        assert regs.x[3] == -1   # RISC-V: division by zero yields -1

    def test_64bit_wraparound(self):
        regs, _ = run_program("""
            li x1, 0x7FFFFFFFFFFFFFFF
            li x2, 1
            add x3, x1, x2
            ret
        """)
        assert regs.x[3] == -(1 << 63)

    @given(st.integers(min_value=-(1 << 62), max_value=1 << 62),
           st.integers(min_value=-(1 << 62), max_value=1 << 62))
    def test_add_matches_wrapped_python(self, a, b):
        regs = UThreadRegisters()
        regs.write_x(5, a)
        regs.write_x(6, b)
        prog = assemble("add x7, x5, x6\nret")
        execute(prog.instructions[0], regs, SimpleMemory())
        assert regs.x[7] == to_signed64(a + b)


class TestScalarFP:
    def test_fp_chain(self):
        regs, _ = run_program("""
            li x1, 3
            fcvt.d.l f1, x1
            li x2, 4
            fcvt.d.l f2, x2
            fmul.d f3, f1, f2
            fadd.d f4, f3, f1
            ret
        """)
        assert regs.f[4] == pytest.approx(15.0)

    def test_fmadd(self):
        regs, _ = run_program("""
            li x1, 2
            fcvt.d.l f1, x1
            li x2, 3
            fcvt.d.l f2, x2
            li x3, 10
            fcvt.d.l f3, x3
            fmadd.d f4, f1, f2, f3
            ret
        """)
        assert regs.f[4] == pytest.approx(16.0)

    def test_fdiv_and_sqrt(self):
        regs, _ = run_program("""
            li x1, 9
            fcvt.d.l f1, x1
            fsqrt.d f2, f1
            li x2, 2
            fcvt.d.l f3, x2
            fdiv.d f4, f1, f3
            ret
        """)
        assert regs.f[2] == pytest.approx(3.0)
        assert regs.f[4] == pytest.approx(4.5)

    def test_fp_compares(self):
        regs, _ = run_program("""
            li x1, 1
            fcvt.d.l f1, x1
            li x2, 2
            fcvt.d.l f2, x2
            flt.d x3, f1, f2
            fle.d x4, f2, f2
            feq.d x5, f1, f2
            ret
        """)
        assert (regs.x[3], regs.x[4], regs.x[5]) == (1, 1, 0)

    def test_fmv_bit_pattern_roundtrip(self):
        regs, _ = run_program("""
            li x1, 5
            fcvt.d.l f1, x1
            fmv.x.d x2, f1
            fmv.d.x f2, x2
            ret
        """)
        assert regs.f[2] == 5.0


class TestMemoryOps:
    def test_store_load_roundtrip(self):
        regs, mem = run_program("""
            li x1, 0x1000
            li x2, -12345
            sd x2, 0(x1)
            ld x3, 0(x1)
            lw x4, 0(x1)
            ret
        """)
        assert regs.x[3] == -12345
        assert regs.x[4] == -12345

    def test_sign_extension_on_loads(self):
        regs, mem = run_program("""
            li x1, 0x1000
            li x2, 0xFF
            sb x2, 0(x1)
            lb x3, 0(x1)
            lbu x4, 0(x1)
            ret
        """)
        assert regs.x[3] == -1
        assert regs.x[4] == 0xFF

    def test_fp_load_store(self):
        regs, _ = run_program("""
            li x1, 0x2000
            li x2, 7
            fcvt.d.l f1, x2
            fsd f1, 0(x1)
            fld f2, 0(x1)
            ret
        """)
        assert regs.f[2] == 7.0

    def test_amoadd_returns_old_value(self):
        regs, mem = run_program("""
            li x1, 0x3000
            li x2, 10
            sd x2, 0(x1)
            li x3, 5
            amoadd.d x4, x3, (x1)
            ld x5, 0(x1)
            ret
        """)
        assert regs.x[4] == 10
        assert regs.x[5] == 15

    def test_amomin(self):
        regs, _ = run_program("""
            li x1, 0x3000
            li x2, 100
            sw x2, 0(x1)
            li x3, 42
            amomin.w x4, x3, (x1)
            lw x5, 0(x1)
            ret
        """)
        assert regs.x[4] == 100 and regs.x[5] == 42

    def test_amoswap_chain(self):
        regs, _ = run_program("""
            li x1, 0x3000
            li x2, 1
            amoswap.d x3, x2, (x1)
            li x4, 2
            amoswap.d x5, x4, (x1)
            ret
        """)
        assert regs.x[3] == 0 and regs.x[5] == 1


class TestControlFlow:
    def test_loop_counts(self):
        regs, _ = run_program("""
            li x1, 0
            li x2, 10
        loop:
            addi x1, x1, 1
            blt x1, x2, loop
            ret
        """)
        assert regs.x[1] == 10

    def test_branch_variants(self):
        regs, _ = run_program("""
            li x1, 5
            li x2, 5
            li x10, 0
            beq x1, x2, taken
            li x10, 99
        taken:
            bne x1, x2, nottaken
            li x11, 1
        nottaken:
            bgeu x1, x2, done
            li x11, 99
        done:
            ret
        """)
        assert regs.x[10] == 0 and regs.x[11] == 1

    def test_unconditional_jump(self):
        regs, _ = run_program("""
            li x1, 1
            j skip
            li x1, 99
        skip:
            ret
        """)
        assert regs.x[1] == 1

    def test_fence_is_noop(self):
        regs, _ = run_program("li x1, 1\nfence\nret")
        assert regs.x[1] == 1
