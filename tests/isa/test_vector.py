"""Tests for RVV semantics: vector ops, masks, reductions, gathers, vamo."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.isa.vector import (
    as_signed,
    as_unsigned,
    bits_to_float,
    float_to_bits,
    pack_elements,
    unpack_elements,
    vlmax,
)
from tests.isa.test_executor import SimpleMemory, run_program


class TestVectorHelpers:
    def test_vlmax(self):
        assert vlmax(64) == 4
        assert vlmax(32) == 8
        assert vlmax(16) == 16
        assert vlmax(8) == 32

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_signed_unsigned_roundtrip_32(self, pattern):
        assert as_unsigned(as_signed(pattern, 32), 32) == pattern

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_float_bits_roundtrip_32(self, value):
        assert bits_to_float(float_to_bits(value, 32), 32) == pytest.approx(
            value, rel=1e-6, abs=1e-30
        )

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float_bits_roundtrip_64(self, value):
        assert bits_to_float(float_to_bits(value, 64), 64) == value

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1),
                    min_size=1, max_size=8))
    def test_pack_unpack_roundtrip(self, elements):
        raw = pack_elements(elements, 64)
        assert unpack_elements(raw, 64) == elements


class TestVectorInteger:
    def test_vadd(self):
        regs, mem = run_program("""
            li x1, 0x1000
            li x2, 0x1100
            li x3, 1
            sd x3, 0(x1)
            li x3, 2
            sd x3, 8(x1)
            li x3, 3
            sd x3, 16(x1)
            li x3, 4
            sd x3, 24(x1)
            vle64.v v1, (x1)
            vadd.vv v2, v1, v1
            vse64.v v2, (x2)
            ret
        """)
        out = [struct.unpack("<q", mem.pm.read_bytes(0x1100 + 8 * i, 8))[0]
               for i in range(4)]
        assert out == [2, 4, 6, 8]

    def test_vadd_vx_and_vi(self):
        regs, _ = run_program("""
            li x5, 10
            vmv.v.x v1, x5
            li x6, 7
            vadd.vx v2, v1, x6
            vadd.vi v3, v2, 3
            vmv.x.s x7, v3
            ret
        """)
        assert regs.x[7] == 20

    def test_vsetvli_caps_vl(self):
        regs, _ = run_program("""
            li x1, 100
            vsetvli x2, x1, e64
            li x3, 2
            vsetvli x4, x3, e64
            ret
        """)
        assert regs.x[2] == 4   # VLMAX for e64
        assert regs.x[4] == 2

    def test_shift_ops(self):
        regs, _ = run_program("""
            li x1, 3
            vmv.v.x v1, x1
            vsll.vi v2, v1, 4
            vsrl.vi v3, v2, 2
            vmv.x.s x2, v2
            vmv.x.s x3, v3
            ret
        """)
        assert regs.x[2] == 48 and regs.x[3] == 12

    def test_vid(self):
        regs, _ = run_program("""
            li x1, 8
            vsetvli x0, x1, e32
            vid.v v1
            vsll.vi v1, v1, 2
            vmv.x.s x2, v1
            ret
        """)
        assert regs.x[2] == 0
        assert regs.v[1] == [0, 4, 8, 12, 16, 20, 24, 28]

    def test_vmacc(self):
        regs, _ = run_program("""
            li x1, 2
            vmv.v.x v1, x1
            li x2, 3
            vmv.v.x v2, x2
            li x3, 10
            vmv.v.x v3, x3
            vmacc.vv v3, v1, v2
            vmv.x.s x4, v3
            ret
        """)
        assert regs.x[4] == 16


class TestVectorMasksAndCompares:
    def test_compare_and_merge(self):
        regs, mem = run_program("""
            li x1, 0x1000
            li x9, 8
            vsetvli x0, x9, e32
            vid.v v1
            vmslt.vx v0, v1, x9
            li x2, 4
            vmslt.vx v0, v1, x2     // mask: [1,1,1,1,0,0,0,0]
            li x3, 99
            vmerge.vxm v2, v1, x3   // 99 where mask else identity
            ret
        """)
        assert regs.v[2] == [99, 99, 99, 99, 4, 5, 6, 7]

    def test_mask_logic(self):
        regs, _ = run_program("""
            li x9, 8
            vsetvli x0, x9, e32
            vid.v v1
            li x2, 2
            vmsge.vx v2, v1, x2
            li x3, 6
            vmslt.vx v3, v1, x3
            vmand.mm v4, v2, v3
            vmor.mm v5, v2, v3
            ret
        """)
        assert regs.v[4] == [0, 0, 1, 1, 1, 1, 0, 0]
        assert regs.v[5] == [1, 1, 1, 1, 1, 1, 1, 1]

    def test_float_compares(self):
        regs, _ = run_program("""
            li x9, 4
            vsetvli x0, x9, e64
            li x1, 3
            fcvt.d.l f1, x1
            vfmv.v.f v1, f1
            li x2, 2
            fcvt.d.l f2, x2
            vmfge.vf v2, v1, f2
            vmflt.vf v3, v1, f2
            ret
        """)
        assert regs.v[2] == [1, 1, 1, 1]
        assert regs.v[3] == [0, 0, 0, 0]


class TestVectorFP:
    def test_vfadd_vfmul(self):
        regs, _ = run_program("""
            li x9, 8
            vsetvli x0, x9, e32
            li x1, 3
            fcvt.s.l f1, x1
            vfmv.v.f v1, f1
            vfadd.vv v2, v1, v1
            vfmul.vv v3, v2, v1
            vfmv.f.s f2, v3
            ret
        """)
        assert regs.f[2] == pytest.approx(18.0)

    def test_vfmacc_vf(self):
        regs, _ = run_program("""
            li x9, 8
            vsetvli x0, x9, e32
            li x1, 2
            fcvt.s.l f1, x1
            vfmv.v.f v1, f1        // [2]*8
            li x2, 10
            fcvt.s.l f2, x2
            vfmv.v.f v2, f2        // [10]*8 accumulator
            vfmacc.vf v2, v1, f1   // 10 + 2*2
            vfmv.f.s f3, v2
            ret
        """)
        assert regs.f[3] == pytest.approx(14.0)

    def test_vfredusum(self):
        regs, _ = run_program("""
            li x9, 8
            vsetvli x0, x9, e32
            li x1, 3
            fcvt.s.l f1, x1
            vfmv.v.f v1, f1
            vmv.v.i v2, 0
            vfredusum.vs v3, v1, v2
            vfmv.f.s f2, v3
            ret
        """)
        assert regs.f[2] == pytest.approx(24.0)


class TestVectorReductions:
    def test_vredsum_with_seed(self):
        regs, _ = run_program("""
            li x9, 4
            vsetvli x0, x9, e64
            li x1, 5
            vmv.v.x v1, x1
            li x2, 100
            vmv.s.x v2, x2
            vredsum.vs v3, v1, v2
            vmv.x.s x3, v3
            ret
        """)
        assert regs.x[3] == 120   # 4*5 + 100

    def test_vredmax_vredmin(self):
        regs, _ = run_program("""
            li x9, 8
            vsetvli x0, x9, e32
            vid.v v1
            vmv.v.i v2, 0
            vredmax.vs v3, v1, v2
            vmv.x.s x3, v3
            vmv.v.i v4, 3
            vredmin.vs v5, v1, v4
            vmv.x.s x4, v5
            ret
        """)
        assert regs.x[3] == 7
        assert regs.x[4] == 0


class TestVectorMemory:
    def test_gather(self):
        regs, mem = run_program("""
            li x1, 0x1000
            li x2, 111
            sw x2, 0(x1)
            li x2, 222
            sw x2, 40(x1)
            li x9, 2
            vsetvli x0, x9, e32
            vmv.v.i v1, 0
            li x3, 40
            vmv.v.x v2, x3
            vmv.s.x v2, x0          // offsets [0, 40]
            vluxei32.v v3, (x1), v2
            ret
        """)
        assert regs.v[3] == [111, 222]

    def test_scatter(self):
        regs, mem = run_program("""
            li x1, 0x2000
            li x9, 2
            vsetvli x0, x9, e64
            li x2, 7
            vmv.v.x v1, x2          // values
            li x3, 64
            vmv.v.x v2, x3
            vmv.s.x v2, x0          // offsets [0, 64]
            vsuxei64.v v1, (x1), v2
            ret
        """)
        assert mem.pm.read_u64(0x2000) == 7
        assert mem.pm.read_u64(0x2040) == 7

    def test_vamo_indexed_atomic_add(self):
        regs, mem = run_program("""
            li x1, 0x3000
            li x9, 4
            vsetvli x0, x9, e32
            vid.v v2
            vsll.vi v2, v2, 2       // offsets 0,4,8,12
            vmv.v.i v1, 1
            vamoadde32.v v1, (x1), v2
            vamoadde32.v v1, (x1), v2
            ret
        """)
        for i in range(4):
            assert mem.pm.read_u32(0x3000 + 4 * i) == 2

    def test_partial_vl_store(self):
        _, mem = run_program("""
            li x1, 0x4000
            li x9, 3
            vsetvli x0, x9, e32
            vmv.v.i v1, 9
            vse32.v v1, (x1)
            ret
        """)
        assert mem.pm.read_u32(0x4000) == 9
        assert mem.pm.read_u32(0x4008) == 9
        assert mem.pm.read_u32(0x400C) == 0   # beyond vl untouched
