"""End-to-end workload correctness at tiny scale: every Table V workload
produces numerically correct results through the full NDP stack."""

import numpy as np
import pytest

from repro.host.offload import make_offload_path
from repro.workloads import dlrm, graph, histogram, kvstore, llm, olap, spmv
from repro.workloads.base import make_platform, scale

TINY = scale("tiny")


class TestOLAP:
    @pytest.mark.parametrize("query", ["q6", "q14", "q1_1", "q1_2", "q1_3"])
    def test_query_masks_correct(self, query):
        platform = make_platform()
        data = olap.generate(query, rows=TINY.rows)
        result = olap.run_ndp_evaluate(platform, data)
        assert result.correct

    def test_selectivity_reasonable(self):
        data = olap.generate("q6", rows=TINY.rows)
        assert 0.0 < data.reference_mask.mean() < 0.5

    def test_baseline_hierarchy(self):
        """Baseline > CPU-NDP > Ideal in runtime (speedup ordering)."""
        data = olap.generate("q6", rows=TINY.rows)
        base = olap.baseline_evaluate_ns(data)
        cpu_ndp = olap.cpu_ndp_evaluate_ns(data)
        ideal = olap.ideal_ndp_evaluate_ns(data)
        assert base > cpu_ndp > ideal

    def test_m2ndp_between_cpu_ndp_and_ideal_at_scale(self):
        platform = make_platform()
        data = olap.generate("q6", rows=1 << 15)
        result = olap.run_ndp_evaluate(platform, data)
        ideal = olap.ideal_ndp_evaluate_ns(data)
        assert result.runtime_ns >= ideal

    def test_phase_split_accounting(self):
        data = olap.generate("q6", rows=TINY.rows)
        base = olap.baseline_evaluate_ns(data)
        phases = olap.full_query_phases_ns(data, base / 10, base)
        assert phases["total"] < phases["baseline_total"]
        assert phases["evaluate"] + phases["filter"] + phases["etc"] == \
            pytest.approx(phases["total"])


class TestHistogram:
    @pytest.mark.parametrize("nbins", [256, 4096])
    def test_bins_correct(self, nbins):
        platform = make_platform()
        data = histogram.generate(TINY.elements, nbins)
        result = histogram.run_ndp(platform, data)
        assert result.correct

    def test_nbins_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            histogram.generate(100, 100)

    def test_scratchpad_traffic_dominates_atomics(self):
        """Bin updates stay in the scratchpad (Fig 6b)."""
        platform = make_platform()
        data = histogram.generate(TINY.elements, 256)
        result = histogram.run_ndp(platform, data)
        assert result.extras["spad_bytes"] > 0

    def test_gpu_spec_shape(self):
        data = histogram.generate(TINY.elements, 256)
        spec = histogram.gpu_spec(data)
        assert spec.total_tbs >= 1
        profile = spec.warp_profile(0)
        assert profile.instructions > 0 and profile.mem_ops


class TestSPMV:
    def test_result_matches_reference(self):
        platform = make_platform()
        data = spmv.generate(TINY.nodes, TINY.avg_degree)
        result = spmv.run_ndp(platform, data)
        assert result.correct

    def test_csr_structure_valid(self):
        m = spmv.generate_csr(100, 4)
        assert len(m.row_ptr) == 101
        assert m.row_ptr[-1] == len(m.col_idx) == len(m.values)
        assert (np.diff(m.row_ptr) >= 0).all()
        assert (m.col_idx < m.n_cols).all()

    def test_gpu_divergence_from_real_rows(self):
        data = spmv.generate(TINY.nodes, TINY.avg_degree)
        spec = spmv.gpu_spec(data)
        ratios = [spec.warp_profile(w).active_lane_ratio
                  for w in range(min(spec.total_warps, 16))]
        assert any(r < 1.0 for r in ratios)   # skew exists


class TestGraph:
    def test_pagerank_iteration_correct(self):
        platform = make_platform()
        data = graph.generate(TINY.nodes, TINY.avg_degree)
        result = graph.run_ndp_pagerank(platform, data, iterations=2)
        assert result.correct

    def test_pagerank_rank_conservation(self):
        data = graph.generate(256, 4)
        rank = np.full(256, 1.0 / 256)
        new_rank = graph.reference_pagerank_iter(data, rank)
        # teleport mass plus damped propagated mass can't exceed 1
        assert 0 < new_rank.sum() <= 1.0 + 1e-9

    def test_sssp_distances_correct(self):
        platform = make_platform()
        data = graph.generate(TINY.nodes // 2, TINY.avg_degree)
        result = graph.run_ndp_sssp(platform, data)
        assert result.correct
        assert result.extras["sweeps"] >= 1

    def test_transpose_preserves_edges(self):
        csr = spmv.generate_csr(64, 4)
        transposed = graph._transpose(csr)
        assert transposed.nnz == csr.nnz
        forward = set()
        for u in range(csr.n_rows):
            for k in range(csr.row_ptr[u], csr.row_ptr[u + 1]):
                forward.add((u, int(csr.col_idx[k])))
        backward = set()
        for v in range(transposed.n_rows):
            for k in range(transposed.row_ptr[v], transposed.row_ptr[v + 1]):
                backward.add((int(transposed.col_idx[k]), v))
        assert forward == backward


class TestDLRM:
    @pytest.mark.parametrize("batch", [1, 4])
    def test_sls_correct(self, batch):
        platform = make_platform()
        data = dlrm.generate(TINY.dlrm_rows, batch=batch, dim=32, lookups=8)
        result = dlrm.run_ndp(platform, data)
        assert result.correct

    def test_zipf_indices_in_range(self):
        from repro.workloads.base import rng
        idx = dlrm.zipf_indices(rng(1), 1000, 5000)
        assert (idx >= 0).all() and (idx < 1000).all()

    def test_zipf_skewed(self):
        from repro.workloads.base import rng
        idx = dlrm.zipf_indices(rng(2), 1000, 5000)
        _, counts = np.unique(idx, return_counts=True)
        assert counts.max() > 5 * counts.mean()

    def test_bytes_touched(self):
        data = dlrm.generate(256, batch=2, dim=32, lookups=8)
        assert dlrm.bytes_touched(data) == 2 * 8 * 32 * 4


class TestLLM:
    def test_gemv_correct(self):
        platform = make_platform()
        data = llm.generate(llm.OPT_2_7B, sim_hidden=TINY.llm_hidden,
                            sim_layers=TINY.llm_layers)
        result = llm.run_ndp(platform, data)
        assert result.correct

    def test_model_shapes(self):
        assert llm.OPT_30B.total_weight_bytes > llm.OPT_2_7B.total_weight_bytes
        # OPT-2.7B ≈ 2.7B params * 4 bytes ≈ 10.5 GB of weights (fp32)
        params = llm.OPT_2_7B.total_weight_bytes / 4
        assert 2e9 < params < 4e9

    def test_extrapolation_factor(self):
        data = llm.generate(llm.OPT_2_7B, sim_hidden=64, sim_layers=2)
        assert data.scale_factor > 100

    def test_all_reduce_bytes(self):
        assert llm.all_reduce_bytes(llm.OPT_2_7B, 1) == 0
        assert llm.all_reduce_bytes(llm.OPT_2_7B, 4) > 0


class TestKVStore:
    def test_ndp_gets_correct(self):
        platform = make_platform()
        data = kvstore.kvs_b(TINY.kv_items, 100)
        result = kvstore.run_ndp(platform, data, make_offload_path("m2func"))
        assert result.correct
        assert result.served == 100

    def test_mixes(self):
        a = kvstore.kvs_a(100, 1000)
        b = kvstore.kvs_b(100, 1000)
        a_gets = sum(r.is_get for r in a.requests) / len(a.requests)
        b_gets = sum(r.is_get for r in b.requests) / len(b.requests)
        assert abs(a_gets - 0.5) < 0.1
        assert abs(b_gets - 0.95) < 0.05

    def test_chain_positions_consistent(self):
        data = kvstore.kvs_a(200, 10)
        # keys hashed to the same bucket get increasing depths
        seen: dict[int, int] = {}
        for i, b in enumerate(data.bucket_of):
            assert data.chain_position[i] == seen.get(int(b), 0)
            seen[int(b)] = data.chain_position[i] + 1

    def test_baseline_p95_grows_with_latency(self):
        data = kvstore.kvs_a(TINY.kv_items, 200)
        p95 = {}
        for ltu in (75.0, 600.0):
            platform = make_platform()
            p95[ltu] = kvstore.run_baseline(platform, data, ltu_ns=ltu).p95_ns
        assert p95[600.0] > 2 * p95[75.0]

    def test_m2func_beats_baseline_p95(self):
        data = kvstore.kvs_a(TINY.kv_items, 300)
        base = kvstore.run_baseline(make_platform(), data)
        ndp = kvstore.run_ndp(make_platform(), data,
                              make_offload_path("m2func"))
        assert ndp.p95_ns < base.p95_ns
