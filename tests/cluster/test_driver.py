"""Multi-tenant traffic driver: correctness, percentiles, scaling."""

import pytest

from repro.cluster import make_cluster_platform
from repro.cluster.driver import StreamSpec, TrafficDriver
from repro.errors import ConfigError


def _mixed_specs(requests=60):
    return [
        StreamSpec("kv", "kvstore", rate_rps=4e6, requests=requests,
                   size=512),
        StreamSpec("scan", "olap", rate_rps=1e6, requests=max(8, requests // 6),
                   size=1 << 13),
        StreamSpec("batch", "vecadd", rate_rps=1e6,
                   requests=max(8, requests // 6), size=1 << 12),
    ]


class TestMultiTenantRun:
    def test_all_streams_served_and_correct(self):
        platform = make_cluster_platform(num_devices=2, backend="batched")
        driver = TrafficDriver(platform, _mixed_specs())
        report = driver.run()
        assert report.correct
        for stream, spec in zip(report.streams, _mixed_specs()):
            assert stream.served == spec.requests
        assert report.served == sum(s.requests for s in _mixed_specs())

    def test_percentiles_ordered(self):
        platform = make_cluster_platform(num_devices=2, backend="batched")
        report = TrafficDriver(platform, _mixed_specs()).run()
        assert report.p50_ns <= report.p95_ns <= report.p99_ns
        for stream in report.streams:
            assert stream.p50_ns <= stream.p95_ns <= stream.p99_ns
            assert stream.span_ns > 0
            assert stream.throughput_rps > 0

    def test_render_mentions_every_stream(self):
        platform = make_cluster_platform(num_devices=2, backend="batched")
        report = TrafficDriver(platform, _mixed_specs(requests=30)).run()
        text = report.render()
        for stream in report.streams:
            assert stream.name in text
        assert "aggregate" in text

    def test_open_loop_backlog_raises_latency(self):
        # same work at 1000x the arrival rate: queueing must show in p95
        def run(rate):
            platform = make_cluster_platform(num_devices=1,
                                             backend="batched")
            spec = StreamSpec("scan", "olap", rate_rps=rate, requests=16,
                              size=1 << 15, slices=4)
            return TrafficDriver(platform, [spec]).run()
        relaxed = run(1e4)
        slammed = run(1e7)
        assert slammed.p95_ns > 2 * relaxed.p95_ns

    def test_deterministic_across_runs(self):
        def run():
            platform = make_cluster_platform(num_devices=2,
                                             backend="batched")
            return TrafficDriver(platform, _mixed_specs(requests=30)).run()
        first, second = run(), run()
        assert first.aggregate.samples == second.aggregate.samples

    def test_config_seed_changes_traffic(self):
        # arrivals and stream data both derive from ClusterConfig.seed
        from repro.config import ClusterConfig

        def run(seed):
            platform = make_cluster_platform(
                num_devices=2,
                cluster=ClusterConfig(num_devices=2, seed=seed),
                backend="batched",
            )
            specs = [StreamSpec("vec", "vecadd", rate_rps=1e6, requests=12,
                                size=1 << 10)]
            return TrafficDriver(platform, specs).run()
        assert run(1).aggregate.samples != run(2).aggregate.samples
        assert run(3).aggregate.samples == run(3).aggregate.samples


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            StreamSpec("s", "graphql", rate_rps=1.0, requests=1)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ConfigError):
            StreamSpec("s", "olap", rate_rps=0.0, requests=1)

    def test_duplicate_stream_names_rejected(self):
        platform = make_cluster_platform(num_devices=1, backend="batched")
        specs = [StreamSpec("same", "olap", rate_rps=1e5, requests=2),
                 StreamSpec("same", "vecadd", rate_rps=1e5, requests=2)]
        with pytest.raises(ConfigError):
            TrafficDriver(platform, specs)

    def test_empty_specs_rejected(self):
        platform = make_cluster_platform(num_devices=1, backend="batched")
        with pytest.raises(ConfigError):
            TrafficDriver(platform, [])


class TestScaling:
    """Acceptance: 4 interleaved devices reach >= 3x the single-device
    aggregate throughput on the vecadd and OLAP-scan drivers."""

    @staticmethod
    def _throughputs(num_devices):
        platform = make_cluster_platform(num_devices=num_devices,
                                         placement="interleaved",
                                         backend="batched")
        driver = TrafficDriver(platform, [
            StreamSpec("vec", "vecadd", rate_rps=1e7, requests=8,
                       size=1 << 16, slices=8),
            StreamSpec("olap", "olap", rate_rps=1e7, requests=8,
                       size=1 << 16, slices=8),
        ])
        report = driver.run()
        assert report.correct
        by_name = {s.name: s for s in report.streams}
        return (by_name["vec"].throughput_rps,
                by_name["olap"].throughput_rps)

    def test_four_devices_at_least_3x(self):
        vec_1, olap_1 = self._throughputs(1)
        vec_4, olap_4 = self._throughputs(4)
        assert vec_4 / vec_1 >= 3.0
        assert olap_4 / olap_1 >= 3.0
