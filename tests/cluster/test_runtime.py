"""ClusterRuntime: single-device equivalence, multi-device correctness,
P2P charging, config/env validation."""

import numpy as np
import pytest

from repro.cluster import ClusterRuntime, make_cluster_platform
from repro.config import ClusterConfig
from repro.errors import ConfigError, LaunchError
from repro.host.api import pack_args
from repro.kernels.reduction import REDUCE_SUM_I64
from repro.kernels.vecadd import VECADD
from repro.workloads import olap
from repro.workloads.base import make_platform

N = 4096


def _vecadd_inputs(n=N):
    a = (np.arange(n) * 7).astype(np.int64)
    b = (np.arange(n)[::-1] * 7).astype(np.int64)
    return a, b


def _run_vecadd(platform, n=N):
    runtime = platform.runtime
    a, b = _vecadd_inputs(n)
    addr_a = runtime.alloc_array(a)
    addr_b = runtime.alloc_array(b)
    addr_c = runtime.alloc(a.nbytes)
    instance = runtime.run_kernel(
        VECADD, addr_a, addr_a + a.nbytes, args=pack_args(addr_b, addr_c)
    )
    return runtime.read_array(addr_c, np.int64, n), instance.runtime_ns


class TestSingleDeviceEquivalence:
    """A 1-device cluster must produce byte-identical functional results to
    the plain M2NDPRuntime on both execution backends."""

    @pytest.mark.parametrize("backend", ["interpreter", "batched"])
    def test_vecadd_byte_identical(self, backend):
        single, _ = _run_vecadd(make_platform(backend=backend))
        clustered, _ = _run_vecadd(
            make_cluster_platform(num_devices=1, backend=backend)
        )
        assert np.array_equal(single.view(np.uint8), clustered.view(np.uint8))

    @pytest.mark.parametrize("backend", ["interpreter", "batched"])
    def test_olap_q6_byte_identical(self, backend):
        rows = 1 << 12
        results = {}
        for make in (lambda: make_platform(backend=backend),
                     lambda: make_cluster_platform(num_devices=1,
                                                   backend=backend)):
            data = olap.generate("q6", rows)
            platform = make()
            run = olap.run_ndp_evaluate(platform, data)
            assert run.correct
            results[platform.__class__.__name__] = run
        single, clustered = results.values()
        assert single.dram_bytes == clustered.dram_bytes

    def test_single_device_timing_close_to_plain_runtime(self):
        # identical modulo the switch hop on the launch path
        _, single_ns = _run_vecadd(make_platform(backend="batched"))
        _, cluster_ns = _run_vecadd(
            make_cluster_platform(num_devices=1, backend="batched")
        )
        assert cluster_ns == pytest.approx(single_ns, rel=0.05)


class TestMultiDeviceCorrectness:
    @pytest.mark.parametrize("backend", ["interpreter", "batched"])
    @pytest.mark.parametrize("placement",
                             ["interleaved", "blocked", "replicated"])
    def test_vecadd_all_placements(self, placement, backend):
        a, b = _vecadd_inputs()
        platform = make_cluster_platform(num_devices=4, placement=placement,
                                         backend=backend)
        out, _ = _run_vecadd(platform)
        assert np.array_equal(out, a + b)

    @pytest.mark.parametrize("scheduler",
                             ["round_robin", "locality", "least_outstanding"])
    def test_vecadd_all_schedulers(self, scheduler):
        a, b = _vecadd_inputs()
        platform = make_cluster_platform(num_devices=3, scheduler=scheduler,
                                         backend="batched")
        out, _ = _run_vecadd(platform)
        assert np.array_equal(out, a + b)

    def test_olap_q6_on_four_devices(self):
        data = olap.generate("q6", 1 << 12)
        platform = make_cluster_platform(num_devices=4, backend="batched")
        run = olap.run_ndp_evaluate(platform, data)
        assert run.correct

    def test_workload_unmodified_on_cluster(self):
        # the workload module is written against the single-device Platform;
        # ClusterPlatform must satisfy it as-is, stats included
        data = olap.generate("q14", 1 << 12)
        platform = make_cluster_platform(num_devices=2, backend="batched")
        run = olap.run_ndp_evaluate(platform, data)
        assert run.correct
        assert run.dram_bytes > 0          # aggregated across devices

    def test_amo_kernel_falls_back_and_stays_correct(self):
        # reduction uses .init/.final + amoadd: every sub-launch falls back
        # to the interpreter on its device; the partial sums still combine
        # because the scratchpad-accumulated result is written per device
        # pool share into the same output via atomics
        platform = make_cluster_platform(num_devices=2, backend="batched")
        runtime = platform.runtime
        n = 2048
        values = np.arange(n, dtype=np.int64)
        addr = runtime.alloc_array(values)
        out = runtime.alloc(8)
        runtime.run_kernel(REDUCE_SUM_I64, addr, addr + n * 8,
                           args=pack_args(out), scratchpad_bytes=64)
        assert runtime.read_array(out, np.int64, 1)[0] == values.sum()

    def test_concurrent_launches_get_distinct_instances(self):
        platform = make_cluster_platform(num_devices=2, backend="batched")
        runtime = platform.runtime
        a, b = _vecadd_inputs()
        addr_a = runtime.alloc_array(a)
        addr_b = runtime.alloc_array(b)
        addr_c = runtime.alloc(a.nbytes)
        kid = runtime.register_kernel(VECADD, name="v")
        handles = [
            runtime.launch_async(kid, addr_a, addr_a + a.nbytes,
                                 args=pack_args(addr_b, addr_c))
            for _ in range(4)
        ]
        runtime.wait_all()
        for handle in handles:
            assert handle.finished
        per_device: dict[int, set] = {}
        for handle in handles:
            for sub, sub_handle in zip(handle.plan, handle.subs):
                ids = per_device.setdefault(sub.device, set())
                assert sub_handle.instance_id not in ids
                ids.add(sub_handle.instance_id)


class TestP2PCharging:
    def test_locality_never_touches_the_switch(self):
        platform = make_cluster_platform(num_devices=4, scheduler="locality",
                                         backend="batched")
        _run_vecadd(platform)
        assert platform.stats.get("switch.p2p_bytes") == 0

    def test_off_owner_sublaunch_pays_p2p(self):
        # a blocked pool swept from a misaligned subrange under round_robin
        # puts chunks on non-owners: P2P bytes must flow through the switch
        platform = make_cluster_platform(num_devices=4, placement="blocked",
                                         scheduler="round_robin",
                                         backend="batched")
        runtime = platform.runtime
        n = 1 << 14
        a, b = _vecadd_inputs(n)
        addr_a = runtime.alloc_array(a)
        addr_b = runtime.alloc_array(b)
        addr_c = runtime.alloc(a.nbytes)
        kid = runtime.register_kernel(VECADD, name="v")
        # skip the first block so round-robin misaligns with ownership
        shard = runtime.shard_map(addr_a)
        lo = addr_a + shard.block_bytes
        handle = runtime.launch_kernel(
            kid, lo, addr_a + a.nbytes, args=pack_args(addr_b, addr_c))
        assert handle.finished
        assert platform.stats.get("switch.p2p_bytes") > 0
        # the logical launch covers A's subrange with x2 starting at 0, so
        # it pairs A[start:] with B[:n-start] — same as a single device
        start = shard.block_bytes // 8
        produced = runtime.read_array(addr_c, np.int64, n - start)
        assert np.array_equal(produced, a[start:] + b[:n - start])

    def test_p2p_delays_sublaunch_start(self):
        kwargs = dict(num_devices=2, placement="blocked", backend="batched")
        times = {}
        for scheduler in ("locality", "round_robin"):
            platform = make_cluster_platform(scheduler=scheduler, **kwargs)
            runtime = platform.runtime
            n = 1 << 15
            a, b = _vecadd_inputs(n)
            addr_a = runtime.alloc_array(a)
            addr_b = runtime.alloc_array(b)
            addr_c = runtime.alloc(a.nbytes)
            kid = runtime.register_kernel(VECADD, name="v")
            shard = runtime.shard_map(addr_a)
            lo = addr_a + shard.block_bytes    # all chunks off-owner for RR
            handle = runtime.launch_kernel(kid, lo, addr_a + a.nbytes,
                                           args=pack_args(addr_b, addr_c))
            times[scheduler] = handle.complete_ns - handle.issued_ns
        assert times["round_robin"] > times["locality"]


class TestValidation:
    def test_cluster_config_rejects_bad_placement(self):
        with pytest.raises(ConfigError):
            ClusterConfig(placement="scattered")

    def test_cluster_config_rejects_bad_scheduler(self):
        with pytest.raises(ConfigError):
            ClusterConfig(scheduler="fifo")

    def test_cluster_config_rejects_zero_devices(self):
        with pytest.raises(ConfigError):
            ClusterConfig(num_devices=0)

    def test_cluster_config_rejects_negative_seed(self):
        with pytest.raises(ConfigError):
            ClusterConfig(seed=-1)

    def test_env_scheduler_validated_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_SCHEDULER", "fifo")
        with pytest.raises(ConfigError, match="REPRO_CLUSTER_SCHEDULER"):
            ClusterRuntime()

    def test_env_scheduler_applied(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_SCHEDULER", "round_robin")
        runtime = ClusterRuntime()
        assert runtime.scheduler.policy == "round_robin"

    def test_explicit_scheduler_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_SCHEDULER", "round_robin")
        runtime = ClusterRuntime(scheduler="least_outstanding")
        assert runtime.scheduler.policy == "least_outstanding"

    def test_env_backend_validated_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "jit")
        with pytest.raises(ConfigError, match="REPRO_EXEC_BACKEND"):
            ClusterRuntime()
        with pytest.raises(ConfigError, match="REPRO_EXEC_BACKEND"):
            make_platform()

    def test_unknown_kernel_id_rejected(self):
        runtime = ClusterRuntime(cluster=ClusterConfig(num_devices=2))
        with pytest.raises(LaunchError):
            runtime.launch_kernel(99, 0x2000_0000, 0x2000_1000)

    def test_conflicting_platform_arguments_rejected(self):
        with pytest.raises(ConfigError):
            make_cluster_platform(cluster=ClusterConfig(), placement="blocked")
