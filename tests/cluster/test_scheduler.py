"""Fan-out scheduler: chunking, the three policies, P2P requirements."""

import pytest

from repro.cluster.placement import ShardMap
from repro.cluster.scheduler import LaunchScheduler, MAX_SUBLAUNCHES
from repro.errors import ConfigError

BASE = 0x2000_0000


def interleaved(devices=4, chunks=8, granule=4096):
    return ShardMap(base=BASE, size=chunks * granule, placement="interleaved",
                    num_devices=devices, shard_bytes=granule)


def blocked(devices=4, size=16 * 4096):
    return ShardMap(base=BASE, size=size, placement="blocked",
                    num_devices=devices, shard_bytes=4096)


def replicated(devices=4, size=16 * 4096):
    return ShardMap(base=BASE, size=size, placement="replicated",
                    num_devices=devices, shard_bytes=4096)


def total_span(subs):
    return sum(s.size for s in subs)


class TestPlanInvariants:
    @pytest.mark.parametrize("policy",
                             ["locality", "round_robin", "least_outstanding"])
    @pytest.mark.parametrize("make_shard", [interleaved, blocked, replicated])
    def test_plan_covers_pool_exactly(self, policy, make_shard):
        shard = make_shard()
        scheduler = LaunchScheduler(policy, 4)
        subs = scheduler.plan(shard, shard.base, shard.bound, 32)
        assert total_span(subs) == shard.size
        assert subs[0].base == shard.base
        assert subs[-1].bound == shard.bound
        for a, b in zip(subs, subs[1:]):
            assert a.bound == b.base
        for sub in subs:
            assert sub.offset_bias == sub.base - shard.base
            assert 0 <= sub.device < 4

    def test_stride_alignment_of_interior_edges(self):
        shard = interleaved(devices=2, chunks=4, granule=4096)
        scheduler = LaunchScheduler("locality", 2)
        stride = 96     # does not divide 4096
        subs = scheduler.plan(shard, shard.base, shard.bound, stride)
        for sub in subs[:-1]:
            assert (sub.bound - shard.base) % stride == 0

    def test_single_device_single_sub(self):
        scheduler = LaunchScheduler("round_robin", 1)
        subs = scheduler.plan(None, BASE, BASE + 4096, 32)
        assert len(subs) == 1
        assert subs[0].device == 0
        assert subs[0].remote == {}

    def test_unmapped_pool_splits_evenly(self):
        scheduler = LaunchScheduler("round_robin", 4)
        subs = scheduler.plan(None, BASE, BASE + 64 * 4096, 32)
        assert len(subs) == 4
        assert {s.device for s in subs} == {0, 1, 2, 3}
        assert all(s.remote == {} for s in subs)

    def test_cap_on_sublaunch_count(self):
        # 1024 chunks over 4 devices would explode; plan falls back to one
        # even span per device
        shard = interleaved(devices=4, chunks=1024)
        scheduler = LaunchScheduler("locality", 4)
        subs = scheduler.plan(shard, shard.base, shard.bound, 32)
        assert len(subs) <= MAX_SUBLAUNCHES
        assert total_span(subs) == shard.size

    def test_empty_pool_rejected(self):
        scheduler = LaunchScheduler("locality", 2)
        with pytest.raises(ConfigError):
            scheduler.plan(None, BASE, BASE, 32)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            LaunchScheduler("random", 2)


class TestLocality:
    def test_follows_interleaved_owners(self):
        shard = interleaved()
        scheduler = LaunchScheduler("locality", 4)
        subs = scheduler.plan(shard, shard.base, shard.bound, 32)
        for sub in subs:
            assert sub.device == shard.owner_of(sub.base)
            assert sub.remote == {}

    def test_follows_blocked_owners(self):
        shard = blocked()
        scheduler = LaunchScheduler("locality", 4)
        subs = scheduler.plan(shard, shard.base, shard.bound, 32)
        assert [s.device for s in subs] == [0, 1, 2, 3]
        assert all(s.remote == {} for s in subs)

    def test_replicated_uses_all_devices_without_p2p(self):
        shard = replicated()
        scheduler = LaunchScheduler("locality", 4)
        subs = scheduler.plan(shard, shard.base, shard.bound, 32)
        assert {s.device for s in subs} == {0, 1, 2, 3}
        assert all(s.remote == {} for s in subs)


class TestRoundRobin:
    def test_cycles_devices(self):
        shard = interleaved(devices=4, chunks=8)
        scheduler = LaunchScheduler("round_robin", 4)
        subs = scheduler.plan(shard, shard.base, shard.bound, 32)
        assert [s.device for s in subs] == [0, 1, 2, 3, 0, 1, 2, 3]
        # interleaved ownership happens to match the cycle: no P2P
        assert all(s.remote == {} for s in subs)

    def test_misaligned_subrange_pays_p2p(self):
        # pool starts in device 1's chunk: round-robin assigns it to
        # device 0, which must pull the chunk over the switch
        shard = interleaved(devices=4, chunks=8)
        scheduler = LaunchScheduler("round_robin", 4)
        lo = shard.base + 4096          # chunk 1, owner 1
        subs = scheduler.plan(shard, lo, shard.bound, 32)
        assert subs[0].device == 0
        assert subs[0].remote == {1: 4096}
        total_remote = sum(s.remote_bytes for s in subs)
        assert total_remote == 7 * 4096     # every chunk lands off-owner


class TestLeastOutstanding:
    def test_prefers_idle_devices(self):
        shard = replicated()
        scheduler = LaunchScheduler("least_outstanding", 4)
        scheduler.note_issued(0)
        scheduler.note_issued(0)
        scheduler.note_issued(1)
        subs = scheduler.plan(shard, shard.base, shard.bound, 32)
        # chunks flow to the least-loaded devices first (2 and 3)
        assert subs[0].device == 2
        assert subs[1].device == 3

    def test_balances_within_one_plan(self):
        shard = replicated()
        scheduler = LaunchScheduler("least_outstanding", 4)
        subs = scheduler.plan(shard, shard.base, shard.bound, 32)
        loads = [sum(1 for s in subs if s.device == d) for d in range(4)]
        assert max(loads) - min(loads) <= 1

    def test_outstanding_bookkeeping_roundtrip(self):
        scheduler = LaunchScheduler("least_outstanding", 2)
        scheduler.note_issued(1)
        assert scheduler.outstanding == [0, 1]
        scheduler.note_complete(1)
        assert scheduler.outstanding == [0, 0]
