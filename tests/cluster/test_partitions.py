"""Hardware partitioning: spec parsing, apportionment and placement.

The partition map's contract is conservation: however a device is split,
the per-partition sub-core / DRAM-channel / L2-set / bandwidth shares
must sum *exactly* to the device totals (property-tested over random
specs), and a tenant pinned to a partition must never produce a launch
or shard outside it.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import make_cluster_platform
from repro.cluster.partitions import (
    PARTITION_SPEC_EXAMPLES,
    PartitionMap,
    parse_partition_spec,
    resolve_partitions,
)
from repro.config import ClusterConfig, SystemConfig
from repro.errors import ConfigError
from repro.host.api import pack_args
from repro.kernels.vecadd import VECADD

import numpy as np


def _pmap(spec: str, num_devices: int = 1) -> PartitionMap:
    return resolve_partitions(spec, SystemConfig(), source="test")


# ---------------------------------------------------------------------------
# spec parsing
# ---------------------------------------------------------------------------

class TestSpecParsing:
    def test_examples_all_parse(self):
        for spec in PARTITION_SPEC_EXAMPLES:
            parsed = parse_partition_spec(spec.strip('"'), source="test")
            assert parsed

    @pytest.mark.parametrize("bad", [
        "", ",", "a:", ":2", "a:0", "a:-1", "a:x", "a,a", "a:1,,b:1",
    ])
    def test_malformed_specs_raise_listing_examples(self, bad):
        with pytest.raises(ConfigError) as err:
            parse_partition_spec(bad, source="test")
        assert PARTITION_SPEC_EXAMPLES[0] in str(err.value)

    def test_more_partitions_than_units_raises(self):
        spec = ",".join(f"p{i}" for i in range(64))
        with pytest.raises(ConfigError):
            _pmap(spec)

    def test_env_knob_validated_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARTITIONS", "nope:0")
        with pytest.raises(ConfigError) as err:
            make_cluster_platform(num_devices=1)
        assert "REPRO_PARTITIONS" in str(err.value)

    def test_env_knob_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARTITIONS", "a:1,b:1")
        platform = make_cluster_platform(num_devices=1)
        assert platform.runtime.partitions.names == ("a", "b")

    def test_empty_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARTITIONS", "")
        platform = make_cluster_platform(num_devices=1)
        assert platform.runtime.partitions is None

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARTITIONS", "a:1,b:1")
        platform = make_cluster_platform(num_devices=1, partitions="x:1,y:3")
        assert platform.runtime.partitions.names == ("x", "y")

    def test_cluster_config_field_validated(self):
        with pytest.raises(ConfigError):
            ClusterConfig(num_devices=1, partitions="bad:")

    def test_cluster_config_field_applies(self):
        cluster = ClusterConfig(num_devices=1, partitions="a:3,b:1")
        platform = make_cluster_platform(cluster=cluster)
        assert platform.runtime.partitions.names == ("a", "b")


# ---------------------------------------------------------------------------
# apportionment conservation (property)
# ---------------------------------------------------------------------------

names = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=6),
    min_size=1, max_size=8, unique=True,
)
weights = st.integers(min_value=1, max_value=16)


class TestApportionment:
    @given(parts=names.flatmap(
        lambda ns: st.tuples(st.just(ns),
                             st.lists(weights, min_size=len(ns),
                                      max_size=len(ns)))))
    @settings(max_examples=60, deadline=None)
    def test_shares_sum_exactly_to_device_totals(self, parts):
        ns, ws = parts
        spec = ",".join(f"{n}:{w}" for n, w in zip(ns, ws))
        pmap = _pmap(spec)
        assert sum(s.num_units for s in pmap.shares) == pmap.total_units
        assert sum(s.channels for s in pmap.shares) == pmap.total_channels
        assert sum(s.l2_sets for s in pmap.shares) == pmap.total_l2_sets
        for share in pmap.shares:
            assert share.num_units >= 1
            assert share.channels >= 1
            assert share.l2_sets >= 1

    @given(parts=names.flatmap(
        lambda ns: st.tuples(st.just(ns),
                             st.lists(weights, min_size=len(ns),
                                      max_size=len(ns)))))
    @settings(max_examples=60, deadline=None)
    def test_unit_ranges_partition_the_device(self, parts):
        ns, ws = parts
        spec = ",".join(f"{n}:{w}" for n, w in zip(ns, ws))
        pmap = _pmap(spec)
        covered = []
        for share in pmap.shares:
            covered.extend(share.units)
        assert sorted(covered) == list(range(pmap.total_units))

    @given(parts=names.flatmap(
        lambda ns: st.tuples(st.just(ns),
                             st.lists(weights, min_size=len(ns),
                                      max_size=len(ns)))))
    @settings(max_examples=30, deadline=None)
    def test_bandwidth_shares_sum_to_device_bandwidth(self, parts):
        ns, ws = parts
        spec = ",".join(f"{n}:{w}" for n, w in zip(ns, ws))
        system = SystemConfig()
        pmap = resolve_partitions(spec, system, source="test")
        total_bw = sum(s.bandwidth_bytes_per_ns for s in pmap.shares)
        device_bw = (system.cxl_dram.channels
                     * pmap.shares[0].channel_bw_bytes_per_ns)
        assert total_bw == pytest.approx(device_bw)

    def test_map_invariant_rejects_bad_totals(self):
        pmap = _pmap("a:1,b:1")
        with pytest.raises(ConfigError):
            PartitionMap(spec=pmap.spec, shares=pmap.shares,
                         total_units=pmap.total_units + 1,
                         total_channels=pmap.total_channels,
                         total_l2_sets=pmap.total_l2_sets)


# ---------------------------------------------------------------------------
# placement / launch isolation (property)
# ---------------------------------------------------------------------------

def _run_pinned(platform, partition: str, n: int = 1 << 10) -> None:
    runtime = platform.runtime
    a = np.arange(n, dtype=np.int64)
    addr_a = runtime.alloc_array(a, partition=partition)
    addr_b = runtime.alloc_array(a, partition=partition)
    addr_c = runtime.alloc(a.nbytes, partition=partition)
    kid = runtime.register_kernel(VECADD, name=f"pin.{partition}")
    runtime.launch_kernel(kid, addr_a, addr_a + a.nbytes,
                          args=pack_args(addr_b, addr_c))


class TestPlacementIsolation:
    def test_alloc_partition_requires_partitioned_cluster(self):
        platform = make_cluster_platform(num_devices=1)
        with pytest.raises(ConfigError):
            platform.runtime.alloc(4096, partition="rt")

    def test_alloc_unknown_partition_raises(self):
        platform = make_cluster_platform(num_devices=1,
                                         partitions="rt:1,batch:1")
        with pytest.raises(ConfigError):
            platform.runtime.alloc(4096, partition="nope")

    @pytest.mark.parametrize("pin", ["rt", "batch"])
    def test_pinned_launches_complete_only_in_their_partition(self, pin):
        platform = make_cluster_platform(num_devices=2,
                                         partitions="rt:1,batch:3")
        _run_pinned(platform, pin)
        stats = platform.stats
        other = "batch" if pin == "rt" else "rt"
        assert stats.get(f"partition.{pin}.kernels_completed") > 0
        assert stats.get(f"partition.{other}.kernels_completed") == 0

    @given(weight_a=st.integers(1, 8), weight_b=st.integers(1, 8),
           pin_first=st.booleans())
    @settings(max_examples=8, deadline=None)
    def test_no_cross_partition_shard_or_launch(self, weight_a, weight_b,
                                                pin_first):
        spec = f"a:{weight_a},b:{weight_b}"
        platform = make_cluster_platform(num_devices=2, partitions=spec)
        pin = "a" if pin_first else "b"
        runtime = platform.runtime
        n = 1 << 9
        arr = np.arange(n, dtype=np.int64)
        addr = runtime.alloc_array(arr, partition=pin)
        shard = runtime.shard_map(addr)
        assert shard.partition == pin
        assert shard.active_partition == pin
        _run_pinned(platform, pin, n=n)
        other = "b" if pin_first else "a"
        assert platform.stats.get(
            f"partition.{other}.kernels_completed") == 0

    def test_unpinned_launches_run_in_default_partition(self):
        platform = make_cluster_platform(num_devices=1,
                                         partitions="first:1,second:1")
        runtime = platform.runtime
        n = 1 << 9
        arr = np.arange(n, dtype=np.int64)
        addr_a = runtime.alloc_array(arr)
        addr_b = runtime.alloc_array(arr)
        addr_c = runtime.alloc(arr.nbytes)
        kid = runtime.register_kernel(VECADD, name="unpinned")
        runtime.launch_kernel(kid, addr_a, addr_a + arr.nbytes,
                              args=pack_args(addr_b, addr_c))
        assert platform.stats.get(
            "partition.first.kernels_completed") > 0
        assert platform.stats.get(
            "partition.second.kernels_completed") == 0

    def test_results_byte_identical_across_partitioning(self):
        """The same unpinned workload computes identical bytes whether
        the device is partitioned or not (timing may differ, bytes not)."""
        outs = []
        for spec in (None, "a:1,b:1"):
            platform = make_cluster_platform(num_devices=2, partitions=spec)
            runtime = platform.runtime
            n = 1 << 10
            a = np.arange(n, dtype=np.int64)
            addr_a = runtime.alloc_array(a)
            addr_b = runtime.alloc_array(a * 3)
            addr_c = runtime.alloc(a.nbytes)
            kid = runtime.register_kernel(VECADD, name="ident")
            runtime.launch_kernel(kid, addr_a, addr_a + a.nbytes,
                                  args=pack_args(addr_b, addr_c))
            outs.append(bytes(runtime.physical.read_bytes(addr_c, a.nbytes)))
        assert outs[0] == outs[1]
        assert outs[0] == (np.arange(1 << 10, dtype=np.int64) * 4).tobytes()


# ---------------------------------------------------------------------------
# manifest sidecar
# ---------------------------------------------------------------------------

class TestManifest:
    def test_partition_map_lands_in_manifest(self):
        from repro.obs.export import run_manifest
        platform = make_cluster_platform(num_devices=1,
                                         partitions="rt:1,batch:3")
        manifest = run_manifest(seed=1,
                                partitions=platform.runtime.partitions)
        names = [p["name"] for p in manifest["partitions"]["partitions"]]
        assert names == ["rt", "batch"]
        assert manifest["partitions"]["spec"] == "rt:1,batch:3"

    def test_unpartitioned_manifest_has_no_partitions_key(self):
        from repro.obs.export import run_manifest
        assert "partitions" not in run_manifest(seed=1, partitions=None)
