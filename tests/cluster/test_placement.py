"""Placement math: shard→device mapping, segments, remote-byte accounting."""

import pytest

from repro.cluster.placement import (
    MIN_SHARD_BYTES,
    ClusterAllocator,
    ShardMap,
    auto_shard_bytes,
)
from repro.errors import ConfigError


def interleaved(base=0x1000, size=16 * 4096, devices=4, granule=4096):
    return ShardMap(base=base, size=size, placement="interleaved",
                    num_devices=devices, shard_bytes=granule)


class TestShardMapInterleaved:
    def test_round_robin_ownership(self):
        shard = interleaved()
        for chunk in range(16):
            addr = shard.base + chunk * 4096
            assert shard.owner_of(addr) == chunk % 4
            assert shard.owner_of(addr + 4095) == chunk % 4

    def test_is_local_matches_owner(self):
        shard = interleaved()
        assert shard.is_local(shard.base, 0)
        assert not shard.is_local(shard.base, 1)
        assert shard.is_local(shard.base + 4096, 1)

    def test_owner_segments_cover_range_exactly(self):
        shard = interleaved()
        segments = shard.owner_segments(shard.base, shard.bound)
        assert segments[0][1] == shard.base
        assert segments[-1][2] == shard.bound
        for (_, _, hi), (_, lo, _) in zip(segments, segments[1:]):
            assert hi == lo
        assert len(segments) == 16

    def test_partial_range_segments(self):
        shard = interleaved()
        lo = shard.base + 4096 + 128          # inside chunk 1
        hi = shard.base + 3 * 4096 + 64       # inside chunk 3
        segments = shard.owner_segments(lo, hi)
        assert segments == [
            (1, lo, shard.base + 2 * 4096),
            (2, shard.base + 2 * 4096, shard.base + 3 * 4096),
            (3, shard.base + 3 * 4096, hi),
        ]

    def test_remote_bytes_excludes_own_shards(self):
        shard = interleaved()
        remote = shard.remote_bytes(shard.base, shard.bound, device=0)
        # device 0 owns 4 of 16 chunks; the other 12 split across 3 peers
        assert remote == {1: 4 * 4096, 2: 4 * 4096, 3: 4 * 4096}

    def test_device_bytes_balanced(self):
        shard = interleaved()
        assert [shard.device_bytes(d) for d in range(4)] == [4 * 4096] * 4


class TestShardMapBlocked:
    def test_contiguous_blocks(self):
        shard = ShardMap(base=0, size=8 * 4096, placement="blocked",
                         num_devices=4, shard_bytes=4096)
        assert shard.block_bytes == 2 * 4096
        assert shard.owner_of(0) == 0
        assert shard.owner_of(2 * 4096) == 1
        assert shard.owner_of(7 * 4096) == 3

    def test_uneven_size_last_device_takes_tail(self):
        shard = ShardMap(base=0, size=9 * 4096, placement="blocked",
                         num_devices=4, shard_bytes=4096)
        # ceil(9/4) pages = 3 pages per block; device 3 only has the tail
        assert shard.owner_of(8 * 4096) == 2
        assert shard.owner_of(9 * 4096 - 1) == 2
        assert shard.device_bytes(3) == 0

    def test_segments_merge_within_block(self):
        shard = ShardMap(base=0, size=8 * 4096, placement="blocked",
                         num_devices=2, shard_bytes=4096)
        assert shard.owner_segments(0, 8 * 4096) == [
            (0, 0, 4 * 4096), (1, 4 * 4096, 8 * 4096)
        ]


class TestShardMapReplicated:
    def test_local_everywhere(self):
        shard = ShardMap(base=0, size=4096, placement="replicated",
                         num_devices=4, shard_bytes=4096)
        for device in range(4):
            assert shard.is_local(0, device)
            assert shard.remote_bytes(0, 4096, device) == {}
        assert shard.owner_segments(0, 4096) == [(-1, 0, 4096)]
        assert shard.device_bytes(2) == 4096


class TestShardMapErrors:
    def test_unknown_placement(self):
        with pytest.raises(ConfigError):
            ShardMap(base=0, size=1, placement="scattered",
                     num_devices=2, shard_bytes=4096)

    def test_out_of_range_owner_lookup(self):
        shard = interleaved()
        with pytest.raises(ConfigError):
            shard.owner_of(shard.bound)
        with pytest.raises(ConfigError):
            shard.owner_segments(shard.base - 1, shard.bound)

    def test_empty_range_has_no_segments(self):
        shard = interleaved()
        assert shard.owner_segments(shard.base, shard.base) == []


class TestAutoShardBytes:
    def test_never_below_page(self):
        assert auto_shard_bytes(64, 8) == MIN_SHARD_BYTES

    def test_page_multiple(self):
        granule = auto_shard_bytes(10 << 20, 4)
        assert granule % MIN_SHARD_BYTES == 0
        # ~4 chunks per device
        assert (10 << 20) / (granule * 4) == pytest.approx(4, rel=0.5)


class _FakeAllocator:
    def __init__(self, start=0x2000):
        self.cursor = start

    def alloc(self, size, align=4096):
        addr = (self.cursor + align - 1) // align * align
        self.cursor = addr + size
        return addr


class TestClusterAllocator:
    def test_lockstep_same_addresses(self):
        alloc = ClusterAllocator([_FakeAllocator(), _FakeAllocator()],
                                 num_devices=2)
        shard = alloc.alloc(8192)
        assert shard.base == 0x2000
        assert alloc.alloc(4096).base == shard.bound

    def test_out_of_lockstep_rejected(self):
        alloc = ClusterAllocator([_FakeAllocator(0), _FakeAllocator(0x100000)],
                                 num_devices=2)
        with pytest.raises(ConfigError):
            alloc.alloc(4096)

    def test_map_for_finds_containing_allocation(self):
        alloc = ClusterAllocator([_FakeAllocator()], num_devices=1)
        first = alloc.alloc(8192)
        second = alloc.alloc(8192)
        assert alloc.map_for(first.base + 100) is first
        assert alloc.map_for(second.base) is second
        assert alloc.map_for(second.bound + 4096) is None

    def test_placement_and_granule_overrides(self):
        alloc = ClusterAllocator([_FakeAllocator(), _FakeAllocator()],
                                 num_devices=2, default_placement="blocked")
        assert alloc.alloc(8192).placement == "blocked"
        shard = alloc.alloc(8192, placement="replicated", shard_bytes=8192)
        assert shard.placement == "replicated"
        assert shard.shard_bytes == 8192
