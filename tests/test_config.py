"""Tests for the Table IV configuration presets."""

import pytest

from repro.config import (
    CPUConfig,
    CXLConfig,
    GPUConfig,
    NDPConfig,
    SystemConfig,
    cpu_ndp_config,
    ddr5_host_dram,
    default_system,
    gpu_ndp_config,
    hbm2_gpu_dram,
    lpddr5_cxl_dram,
    memory_side_l2_config,
    ndp_l1d_config,
)
from repro.errors import ConfigError


class TestDRAMPresets:
    def test_lpddr5_table_iv(self):
        dram = lpddr5_cxl_dram()
        assert dram.channels == 32
        assert dram.total_bw_bytes_per_ns == pytest.approx(409.6)
        assert dram.access_granularity == 32
        assert dram.capacity_bytes == 256 << 30
        t = dram.timing
        assert (t.t_rc, t.t_rcd, t.t_cl, t.t_rp) == (48, 15, 20, 15)

    def test_ddr5_table_iv(self):
        dram = ddr5_host_dram()
        assert dram.total_bw_bytes_per_ns == pytest.approx(409.6)
        assert dram.access_granularity == 64

    def test_hbm2_bandwidth(self):
        assert hbm2_gpu_dram().total_bw_bytes_per_ns == pytest.approx(1024.0)

    def test_timing_validation(self):
        from repro.config import DRAMTiming
        with pytest.raises(ConfigError):
            DRAMTiming(tck_ns=1.0, t_rc=10, t_rcd=20, t_cl=5, t_rp=20)


class TestNDPConfig:
    def test_table_iv_defaults(self):
        ndp = NDPConfig()
        assert ndp.num_units == 32
        assert ndp.subcores_per_unit == 4
        assert ndp.uthread_slots_per_subcore == 16
        assert ndp.total_uthread_slots == 2048
        assert ndp.regfile_bytes_per_unit == 48 << 10
        assert ndp.vector_bytes == 32
        assert ndp.max_concurrent_kernels == 48

    def test_clock(self):
        assert NDPConfig().clock.period_ns == 0.5

    def test_rf_split_across_subcores(self):
        assert NDPConfig().regfile_bytes_per_subcore == 12 << 10


class TestGPUConfig:
    def test_warps_per_sm(self):
        assert GPUConfig().max_warps_per_sm == 48

    def test_gpu_ndp_fractional_sms(self):
        config = gpu_ndp_config(16.2)
        assert config.num_sms == 16
        assert config.freq_ghz == pytest.approx(2.0 * 16.2 / 16)

    def test_gpu_ndp_rejects_zero(self):
        with pytest.raises(ConfigError):
            gpu_ndp_config(0.4)


class TestCPUConfig:
    def test_defaults(self):
        cpu = CPUConfig()
        assert cpu.num_cores == 64
        assert cpu.freq_ghz == 3.2

    def test_cpu_ndp_uses_32_cores(self):
        assert cpu_ndp_config().num_cores == 32


class TestCacheConfigs:
    def test_l2_table_iv(self):
        l2 = memory_side_l2_config()
        assert l2.size_bytes == 4 << 20
        assert l2.ways == 16
        assert (l2.line_bytes, l2.sector_bytes) == (128, 32)

    def test_l1d_table_iv(self):
        l1 = ndp_l1d_config()
        assert l1.size_bytes == 128 << 10


class TestSystemConfig:
    def test_default_bundle(self):
        system = default_system()
        assert system.cxl.load_to_use_ns == 150.0
        assert system.cxl_dram.name == "LPDDR5-CXL"

    def test_with_ltu(self):
        system = default_system().with_ltu(300.0)
        assert system.cxl.load_to_use_ns == 300.0
        # other components untouched
        assert system.ndp.num_units == 32

    def test_with_ndp_freq(self):
        system = default_system().with_ndp_freq(1.0)
        assert system.ndp.freq_ghz == 1.0

    def test_immutability(self):
        system = default_system()
        with pytest.raises(Exception):
            system.cxl.load_to_use_ns = 999.0
