"""Tests for the NDP controller (Table II) and device end-to-end paths."""

import numpy as np
import pytest

from repro.errors import LaunchError
from repro.host.api import M2NDPRuntime, pack_args
from repro.kernels.vecadd import VECADD
from repro.ndp.controller import ERR_BAD_ARGS, ERR_UNKNOWN_KERNEL
from repro.ndp.device import M2NDPDevice
from repro.ndp.kernel import KernelStatus
from repro.sim.engine import Simulator


@pytest.fixture
def platform():
    sim = Simulator()
    device = M2NDPDevice(sim)
    runtime = M2NDPRuntime(device)
    return sim, device, runtime


def setup_vecadd(runtime, n=512):
    a = np.arange(n, dtype=np.int64)
    b = np.arange(n, dtype=np.int64) * 2
    addr_a = runtime.alloc_array(a)
    addr_b = runtime.alloc_array(b)
    addr_c = runtime.alloc(n * 8)
    return a, b, addr_a, addr_b, addr_c, n


class TestTableII:
    def test_register_returns_positive_id(self, platform):
        _, _, runtime = platform
        kid = runtime.register_kernel(VECADD)
        assert kid > 0

    def test_register_ids_unique(self, platform):
        _, _, runtime = platform
        ids = {runtime.register_kernel(VECADD) for _ in range(5)}
        assert len(ids) == 5

    def test_unregister(self, platform):
        _, device, runtime = platform
        kid = runtime.register_kernel(VECADD)
        runtime.unregister_kernel(kid)
        assert kid not in device.controller.kernels

    def test_unregister_unknown_errors(self, platform):
        _, _, runtime = platform
        with pytest.raises(LaunchError) as exc:
            runtime.unregister_kernel(999)
        assert exc.value.code == ERR_UNKNOWN_KERNEL

    def test_launch_unknown_kernel_errors(self, platform):
        _, _, runtime = platform
        with pytest.raises(LaunchError):
            runtime.launch_kernel(12345, 0x2000_0000, 0x2000_0020)

    def test_sync_launch_completes_kernel(self, platform):
        _, device, runtime = platform
        a, b, addr_a, addr_b, addr_c, n = setup_vecadd(runtime)
        kid = runtime.register_kernel(VECADD)
        handle = runtime.launch_kernel(
            kid, addr_a, addr_a + n * 8, args=pack_args(addr_b, addr_c),
            sync=True,
        )
        assert handle.finished
        instance = device.controller.instances[handle.instance_id]
        assert instance.status is KernelStatus.FINISHED
        out = runtime.read_array(addr_c, np.int64, n)
        assert np.array_equal(out, a + b)

    def test_async_launch_then_poll(self, platform):
        sim, device, runtime = platform
        a, b, addr_a, addr_b, addr_c, n = setup_vecadd(runtime)
        kid = runtime.register_kernel(VECADD)
        handle = runtime.launch_kernel(
            kid, addr_a, addr_a + n * 8, args=pack_args(addr_b, addr_c),
            sync=False,
        )
        assert handle.instance_id is not None
        runtime.wait_all()
        status = runtime.poll_kernel_status(handle.instance_id)
        assert status is KernelStatus.FINISHED

    def test_poll_unknown_instance_errors(self, platform):
        _, _, runtime = platform
        with pytest.raises(LaunchError):
            runtime.poll_kernel_status(777)

    def test_shootdown_via_api(self, platform):
        _, device, runtime = platform
        addr = runtime.alloc(4096)
        runtime.shootdown_tlb(runtime.asid, addr >> 12)   # must not raise

    def test_return_value_stored_in_m2func_region(self, platform):
        """The controller stores return values at the call address so a
        plain CXL.mem read retrieves them (§III-B)."""
        _, device, runtime = platform
        kid = runtime.register_kernel(VECADD)
        addr = runtime.func_addr(0)
        import struct
        stored = struct.unpack("<q", device.physical.read_bytes(addr, 8))[0]
        assert stored == kid


class TestConcurrencyAndQueueing:
    def test_concurrent_kernels_share_units(self, platform):
        sim, device, runtime = platform
        a, b, addr_a, addr_b, addr_c, n = setup_vecadd(runtime, n=1024)
        kid = runtime.register_kernel(VECADD)
        handles = [
            runtime.launch_async(kid, addr_a, addr_a + n * 8,
                                 args=pack_args(addr_b, addr_c))
            for _ in range(4)
        ]
        runtime.wait_all()
        assert all(h.complete_ns is not None for h in handles)

    def test_launch_queue_beyond_max_concurrent(self, platform):
        sim, device, runtime = platform
        a, b, addr_a, addr_b, addr_c, n = setup_vecadd(runtime, n=256)
        kid = runtime.register_kernel(VECADD)
        count = device.config.ndp.max_concurrent_kernels + 8
        handles = [
            runtime.launch_async(kid, addr_a, addr_a + n * 8,
                                 args=pack_args(addr_b, addr_c))
            for _ in range(count)
        ]
        runtime.wait_all()
        finished = [h for h in handles if h.complete_ns is not None]
        assert len(finished) == count

    def test_instances_get_distinct_arg_slots(self, platform):
        """Concurrent instances must not clobber each other's scratchpad
        argument blocks."""
        sim, device, runtime = platform
        n = 256
        kid = runtime.register_kernel(VECADD)
        a = np.arange(n, dtype=np.int64)
        addr_a = runtime.alloc_array(a)
        outs = []
        for i in range(3):
            b = np.full(n, 1000 * (i + 1), dtype=np.int64)
            addr_b = runtime.alloc_array(b)
            addr_c = runtime.alloc(n * 8)
            outs.append((b, addr_c))
            runtime.launch_async(kid, addr_a, addr_a + n * 8,
                                 args=pack_args(addr_b, addr_c))
        runtime.wait_all()
        for b, addr_c in outs:
            assert np.array_equal(runtime.read_array(addr_c, np.int64, n),
                                  a + b)


class TestDeviceTiming:
    def test_normal_read_pays_load_to_use(self, platform):
        sim, device, runtime = platform
        addr = runtime.alloc(64)
        results = []
        device.host_read(0.0, addr, 64, lambda data, t: results.append(t))
        sim.run()
        assert len(results) == 1
        # at least the link round trip plus device processing
        assert results[0] >= 2 * device.link.one_way_ns

    def test_write_ack_timing(self, platform):
        sim, device, runtime = platform
        addr = runtime.alloc(64)
        ack = device.host_write(0.0, addr, b"\0" * 64)
        assert ack >= 2 * device.link.one_way_ns

    def test_kernel_runtime_positive_and_bw_sane(self, platform):
        sim, device, runtime = platform
        a, b, addr_a, addr_b, addr_c, n = setup_vecadd(runtime, n=4096)
        instance = runtime.run_kernel(
            VECADD, addr_a, addr_a + n * 8, args=pack_args(addr_b, addr_c)
        )
        assert instance.runtime_ns > 0
        bw = device.stats.get("cxl_dram.bytes") / instance.runtime_ns
        assert bw <= device.dram.peak_bw_bytes_per_ns

    def test_streaming_kernel_near_peak_bandwidth(self, platform):
        """The paper's headline microarchitecture claim: µthreads saturate
        ~90% of internal DRAM bandwidth on streaming kernels."""
        sim, device, runtime = platform
        a, b, addr_a, addr_b, addr_c, n = setup_vecadd(runtime, n=8192)
        instance = runtime.run_kernel(
            VECADD, addr_a, addr_a + n * 8, args=pack_args(addr_b, addr_c)
        )
        utilization = device.dram.utilization(instance.runtime_ns)
        assert utilization > 0.80
