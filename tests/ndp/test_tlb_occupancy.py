"""Tests for virtual memory (TLBs, DRAM-TLB) and occupancy management."""

import pytest

from repro.errors import LaunchError, TranslationFault
from repro.ndp.occupancy import SubcoreOccupancy, UnitOccupancy
from repro.ndp.tlb import (
    DRAM_TLB_ENTRY_BYTES,
    DRAMTLB,
    PAGE_SIZE,
    PageTable,
    TLB,
)


class TestPageTable:
    def test_map_and_lookup(self):
        table = PageTable(asid=7)
        table.map_page(vpn=0x100, ppn=0x200)
        assert table.lookup(0x100).ppn == 0x200

    def test_fault_on_unmapped(self):
        with pytest.raises(TranslationFault):
            PageTable(asid=7).lookup(0x999)

    def test_map_range(self):
        table = PageTable(asid=1)
        table.map_range(0x10000, 0x80000, 3 * PAGE_SIZE)
        for i in range(3):
            assert table.lookup((0x10000 >> 12) + i).ppn == (0x80000 >> 12) + i

    def test_map_identity(self):
        table = PageTable(asid=1)
        table.map_identity(0x123456, 100)
        vpn = 0x123456 >> 12
        assert table.lookup(vpn).ppn == vpn

    def test_unaligned_range_rejected(self):
        with pytest.raises(TranslationFault):
            PageTable(asid=1).map_range(0x10001, 0x80000, PAGE_SIZE)

    def test_unmap(self):
        table = PageTable(asid=1)
        table.map_page(1, 2)
        assert table.unmap(1) is True
        assert table.unmap(1) is False


class TestTLB:
    def test_hit_after_insert(self):
        tlb = TLB(entries=4)
        table = PageTable(asid=1)
        table.map_page(5, 50)
        assert tlb.lookup(1, 5) is None
        tlb.insert(1, table.lookup(5))
        assert tlb.lookup(1, 5).ppn == 50

    def test_asid_isolation(self):
        tlb = TLB(entries=4)
        table = PageTable(asid=1)
        table.map_page(5, 50)
        tlb.insert(1, table.lookup(5))
        assert tlb.lookup(2, 5) is None

    def test_lru_capacity(self):
        tlb = TLB(entries=2)
        table = PageTable(asid=1)
        for vpn in range(3):
            table.map_page(vpn, vpn + 100)
            tlb.insert(1, table.lookup(vpn))
        assert tlb.lookup(1, 0) is None     # evicted
        assert tlb.lookup(1, 2) is not None

    def test_shootdown(self):
        tlb = TLB(entries=4)
        table = PageTable(asid=1)
        table.map_page(5, 50)
        tlb.insert(1, table.lookup(5))
        assert tlb.shootdown(1, 5) is True
        assert tlb.lookup(1, 5) is None
        assert tlb.shootdown(1, 5) is False

    def test_hit_rate(self):
        tlb = TLB(entries=4)
        table = PageTable(asid=1)
        table.map_page(1, 10)
        tlb.lookup(1, 1)
        tlb.insert(1, table.lookup(1))
        tlb.lookup(1, 1)
        assert tlb.hit_rate == pytest.approx(0.5)


class TestDRAMTLB:
    def test_entry_cost_is_16_bytes(self):
        assert DRAM_TLB_ENTRY_BYTES == 16
        # 0.4% overhead for 4 KB pages (paper §III-H)
        assert DRAM_TLB_ENTRY_BYTES / PAGE_SIZE == pytest.approx(0.0039, abs=1e-4)

    def test_cold_then_warm(self):
        dtlb = DRAMTLB(region_entries=1 << 12)
        table = PageTable(asid=1)
        table.map_page(7, 70)
        _, cold = dtlb.lookup(1, 7, table)
        assert cold is True
        translation, cold = dtlb.lookup(1, 7, table)
        assert cold is False and translation.ppn == 70

    def test_warm_range(self):
        dtlb = DRAMTLB(region_entries=1 << 12)
        table = PageTable(asid=1)
        table.map_identity(0x100000, 4 * PAGE_SIZE)
        count = dtlb.warm_range(1, 0x100000, 4 * PAGE_SIZE, table)
        assert count == 4
        _, cold = dtlb.lookup(1, 0x100000 >> 12, table)
        assert cold is False

    def test_shootdown(self):
        dtlb = DRAMTLB(region_entries=1 << 12)
        table = PageTable(asid=1)
        table.map_page(7, 70)
        dtlb.lookup(1, 7, table)
        assert dtlb.shootdown(1, 7) is True
        _, cold = dtlb.lookup(1, 7, table)
        assert cold is True


class TestSubcoreOccupancy:
    def test_slot_limit(self):
        occ = SubcoreOccupancy(num_slots=2, rf_capacity_bytes=1 << 20)
        occ.allocate(100)
        occ.allocate(100)
        assert not occ.can_allocate(100)
        with pytest.raises(LaunchError):
            occ.allocate(100)

    def test_rf_limit(self):
        occ = SubcoreOccupancy(num_slots=16, rf_capacity_bytes=250)
        occ.allocate(200)
        assert not occ.can_allocate(100)

    def test_release_fine_grained(self):
        occ = SubcoreOccupancy(num_slots=1, rf_capacity_bytes=1000)
        slot = occ.allocate(100)
        occ.release(slot, 100)
        assert occ.can_allocate(100)
        assert occ.active == 0

    def test_coarse_grained_quarantine(self):
        """Fig 12a ablation: coarse spawn holds slots until all drain."""
        occ = SubcoreOccupancy(num_slots=2, rf_capacity_bytes=1 << 20,
                               spawn_granularity=2)
        a = occ.allocate(10)
        b = occ.allocate(10)
        occ.release(a, 10)
        # slot a is quarantined while b is still running
        assert not occ.can_allocate(10)
        occ.release(b, 10)
        assert occ.can_allocate(10)

    def test_release_underflow_detected(self):
        occ = SubcoreOccupancy(num_slots=2, rf_capacity_bytes=100)
        slot = occ.allocate(50)
        occ.release(slot, 50)
        with pytest.raises(LaunchError):
            occ.release(slot, 50)


class TestUnitOccupancy:
    def test_round_robin_across_subcores(self):
        unit = UnitOccupancy(num_subcores=4, slots_per_subcore=16,
                             rf_bytes_per_subcore=1 << 20)
        allocations = [unit.try_allocate(64) for _ in range(4)]
        assert {a.subcore_index for a in allocations} == {0, 1, 2, 3}

    def test_full_unit_returns_none(self):
        unit = UnitOccupancy(num_subcores=1, slots_per_subcore=2,
                             rf_bytes_per_subcore=1 << 20)
        unit.try_allocate(1)
        unit.try_allocate(1)
        assert unit.try_allocate(1) is None

    def test_active_ratio(self):
        unit = UnitOccupancy(num_subcores=2, slots_per_subcore=2,
                             rf_bytes_per_subcore=1 << 20)
        unit.try_allocate(1)
        assert unit.active_ratio() == 0.25

    def test_release_restores(self):
        unit = UnitOccupancy(num_subcores=1, slots_per_subcore=1,
                             rf_bytes_per_subcore=1 << 20)
        alloc = unit.try_allocate(8)
        assert unit.try_allocate(8) is None
        unit.release(alloc)
        assert unit.try_allocate(8) is not None
