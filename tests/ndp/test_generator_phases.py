"""Tests for µthread generation: pool mapping, phases, unit interleaving."""

import pytest

from repro.isa.assembler import assemble_kernel
from repro.ndp.generator import KernelExecution
from repro.ndp.kernel import KernelDescriptor, KernelInstance
from repro.ndp.uthread import Phase


def make_execution(source: str, pool_span: int, stride: int = 32,
                   num_units: int = 4, slots_per_unit: int = 8,
                   on_complete=None) -> KernelExecution:
    program = assemble_kernel(source)
    kernel = KernelDescriptor.from_program(1, program, scratchpad_bytes=0)
    instance = KernelInstance(
        instance_id=1, kernel=kernel, pool_base=0x1000,
        pool_bound=0x1000 + pool_span, uthread_stride=stride,
    )
    execution = KernelExecution(
        instance=instance, num_units=num_units, slots_per_unit=slots_per_unit,
        vector_bytes=32, scratchpad_bytes=128 * 1024,
        max_concurrent_kernels=48,
        on_complete=on_complete or (lambda ex, t: None),
    )
    execution.start(0.0)
    return execution


BODY_ONLY = ".body\nret"
THREE_PHASE = ".init\nret\n.body\nret\n.final\nret"


class TestPoolMapping:
    def test_body_thread_count(self):
        ex = make_execution(BODY_ONLY, pool_span=320, stride=32)
        assert ex.instance.num_body_uthreads == 10

    def test_partial_tail_slice_counts(self):
        ex = make_execution(BODY_ONLY, pool_span=33, stride=32)
        assert ex.instance.num_body_uthreads == 2

    def test_interleaved_unit_assignment(self):
        """Body µthread i runs on unit i % num_units (§III-E)."""
        ex = make_execution(BODY_ONLY, pool_span=8 * 32, num_units=4)
        seen = {}
        for unit in range(4):
            while ex.has_pending_for_unit(unit):
                desc = ex.take_for_unit(unit)
                index = (desc.mapped_addr - 0x1000) // 32
                seen[index] = unit
        assert seen == {i: i % 4 for i in range(8)}

    def test_mapped_address_and_offset(self):
        ex = make_execution(BODY_ONLY, pool_span=4 * 32, num_units=2)
        desc = ex.take_for_unit(1)
        assert desc.mapped_addr == 0x1000 + 32
        assert desc.offset == 32


class TestPhases:
    def test_initializer_spawns_one_per_slot(self):
        ex = make_execution(THREE_PHASE, pool_span=32, num_units=2,
                            slots_per_unit=4)
        count = 0
        for unit in range(2):
            while ex.has_pending_for_unit(unit):
                desc = ex.take_for_unit(unit)
                assert desc.phase is Phase.INITIALIZER
                assert desc.mapped_addr == unit       # x1 = unit index
                count += 1
        assert count == 8

    def test_phase_barrier_advances(self):
        completions = []
        ex = make_execution(
            THREE_PHASE, pool_span=32, num_units=1, slots_per_unit=2,
            on_complete=lambda e, t: completions.append(t),
        )
        # drain initializer (2 slot-threads)
        descs = []
        while ex.has_pending_for_unit(0):
            descs.append(ex.take_for_unit(0))
        ex.outstanding = len(descs)
        assert ex.on_thread_done(1.0) is False
        assert ex.on_thread_done(2.0) is True       # barrier crossed
        # body phase: 1 µthread
        desc = ex.take_for_unit(0)
        assert desc.phase is Phase.BODY
        ex.outstanding = 1
        assert ex.on_thread_done(3.0) is True       # barrier to finalizer
        descs = []
        while ex.has_pending_for_unit(0):
            descs.append(ex.take_for_unit(0))
        assert all(d.phase is Phase.FINALIZER for d in descs)
        ex.outstanding = len(descs)
        for i, _ in enumerate(descs):
            ex.on_thread_done(4.0 + i)
        assert ex.finished
        assert len(completions) == 1

    def test_multi_body_kernel_runs_bodies_in_order(self):
        source = ".body\nret\n.body\nli x4, 1\nret"
        ex = make_execution(source, pool_span=32, num_units=1,
                            slots_per_unit=2)
        first = ex.take_for_unit(0)
        assert first.body_index == 0
        ex.outstanding = 1
        ex.on_thread_done(1.0)
        second = ex.take_for_unit(0)
        assert second.body_index == 1

    def test_uthreads_total_accounting(self):
        ex = make_execution(THREE_PHASE, pool_span=4 * 32, num_units=2,
                            slots_per_unit=4)
        # init (2*4) + body (4) + final (2*4)
        assert ex.instance.uthreads_total == 20


class TestDescriptorValidation:
    def test_declared_registers_must_cover_usage(self):
        from repro.errors import LaunchError
        from repro.isa.registers import RegisterUsage

        program = assemble_kernel("li x9, 1\nret")
        with pytest.raises(LaunchError):
            KernelDescriptor.from_program(
                1, program, usage=RegisterUsage(int_regs=2)
            )

    def test_rf_bytes_per_uthread(self):
        program = assemble_kernel("vadd.vv v1, v2, v3\nld x4, 0(x3)\nret")
        kernel = KernelDescriptor.from_program(1, program)
        # 5 int regs * 8 B + 4 vector regs * 32 B
        assert kernel.rf_bytes_per_uthread(32) == 5 * 8 + 4 * 32

    def test_bad_pool_region_rejected(self):
        from repro.errors import LaunchError

        program = assemble_kernel(BODY_ONLY)
        kernel = KernelDescriptor.from_program(1, program)
        with pytest.raises(LaunchError):
            KernelInstance(instance_id=1, kernel=kernel,
                           pool_base=0x2000, pool_bound=0x1000)

    def test_runtime_requires_completion(self):
        from repro.errors import LaunchError

        program = assemble_kernel(BODY_ONLY)
        kernel = KernelDescriptor.from_program(1, program)
        instance = KernelInstance(instance_id=1, kernel=kernel,
                                  pool_base=0, pool_bound=32)
        with pytest.raises(LaunchError):
            instance.runtime_ns
