"""Unit tests for the span tracer (repro.obs.tracer)."""

import pytest

from repro.errors import ConfigError
from repro.obs import tracer as obs_tracer
from repro.obs.tracer import HOST_PID, NULL_TRACER, Tracer, tracer_of
from repro.sim.engine import Simulator


@pytest.fixture
def restore_enabled():
    prior = obs_tracer.ENABLED
    yield
    obs_tracer.set_enabled(prior)


class TestSpanLifecycle:
    def test_begin_end_round_trip(self):
        tracer = Tracer()
        span_id = tracer.begin("stage", 10.0, tenant="web")
        tracer.end(span_id, 25.0, outcome="served")
        [span] = tracer.finalize()
        assert span.name == "stage"
        assert span.start_ns == 10.0
        assert span.end_ns == 25.0
        assert span.duration_ns == 15.0
        assert span.args == {"tenant": "web", "outcome": "served"}

    def test_end_none_is_noop(self):
        tracer = Tracer()
        tracer.end(None, 5.0)
        assert tracer.finalize() == []

    def test_record_and_instant(self):
        tracer = Tracer()
        rec = tracer.record("bounded", 1.0, 3.0, bytes=64)
        mark = tracer.instant("marker", 2.0, reason="hit")
        spans = {s.span_id: s for s in tracer.finalize()}
        assert spans[rec].duration_ns == 2.0
        assert spans[mark].start_ns == spans[mark].end_ns == 2.0

    def test_finalize_closes_open_spans(self):
        tracer = Tracer()
        open_id = tracer.begin("never_ended", 7.0)
        [span] = tracer.finalize()
        assert span.span_id == open_id
        assert span.end_ns == 7.0

    def test_finalize_idempotent(self):
        tracer = Tracer()
        tracer.record("a", 0.0, 1.0)
        first = tracer.finalize()
        assert tracer.finalize() == first

    def test_context_manager_nests(self):
        tracer = Tracer()
        with tracer.span("outer", 0.0, end_ns_fn=lambda: 10.0) as outer:
            inner = tracer.begin("inner", 2.0)
            tracer.end(inner, 4.0)
        spans = {s.name: s for s in tracer.finalize()}
        assert spans["inner"].parent_id == outer
        assert spans["outer"].end_ns == 10.0


class TestLanesAndStitching:
    def test_alloc_tid_is_per_pid(self):
        tracer = Tracer()
        assert tracer.alloc_tid(0) == 0
        assert tracer.alloc_tid(0) == 1
        assert tracer.alloc_tid(3) == 0

    def test_children_inherit_parent_lane(self):
        tracer = Tracer()
        lane = tracer.alloc_tid(HOST_PID)
        root = tracer.begin("root", 0.0, tid=lane)
        child = tracer.begin("child", 1.0, parent=root)
        tracer.end(child, 2.0)
        tracer.end(root, 3.0)
        spans = {s.span_id: s for s in tracer.finalize()}
        assert spans[child].tid == lane

    def test_cross_pid_child_gets_own_lane(self):
        tracer = Tracer()
        root = tracer.begin("root", 0.0, pid=0, tid=tracer.alloc_tid(0))
        child = tracer.begin("child", 1.0, parent=root, pid=2)
        tracer.end(child, 2.0)
        tracer.end(root, 3.0)
        spans = {s.span_id: s for s in tracer.finalize()}
        assert spans[child].tid is not None

    def test_instance_link_resolves_after_recording(self):
        # The cluster learns a sub-launch's instance id only after the
        # backend may have recorded its span: the link must still adopt.
        tracer = Tracer()
        exec_span = tracer.record("exec.batched", 5.0, 9.0, pid=2,
                                  instance=17)
        lane = tracer.alloc_tid(2)
        parent = tracer.record("cluster.sub_launch", 4.0, 10.0, pid=2,
                               tid=lane)
        tracer.link_instance(2, 17, parent, lane)
        spans = {s.span_id: s for s in tracer.finalize()}
        assert spans[exec_span].parent_id == parent
        assert spans[exec_span].tid == lane

    def test_unlinked_instance_stays_root(self):
        tracer = Tracer()
        orphan = tracer.record("exec.point", 0.0, 1.0, pid=1, instance=99)
        spans = {s.span_id: s for s in tracer.finalize()}
        assert spans[orphan].parent_id is None

    def test_aggregates_self_time(self):
        tracer = Tracer()
        root = tracer.record("outer", 0.0, 10.0)
        tracer.record("inner", 2.0, 6.0, parent=root)
        agg = tracer.aggregates()
        assert agg["outer"]["total_ns"] == 10.0
        assert agg["outer"]["self_ns"] == 6.0
        assert agg["inner"]["count"] == 1
        assert list(agg) == sorted(agg)


class TestEnabledFlag:
    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "yes")
        with pytest.raises(ConfigError):
            obs_tracer._env_enabled()

    def test_env_accepts_zero_and_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert obs_tracer._env_enabled() is False
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert obs_tracer._env_enabled() is True

    def test_tracer_of_null_when_disabled(self, restore_enabled):
        obs_tracer.set_enabled(False)
        assert tracer_of(Simulator()) is NULL_TRACER

    def test_tracer_of_caches_per_sim(self, restore_enabled):
        obs_tracer.set_enabled(True)
        sim = Simulator()
        assert tracer_of(sim) is tracer_of(sim)

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.begin("x", 0.0) is None
        NULL_TRACER.end(None, 1.0)
        assert NULL_TRACER.alloc_tid(0) == 0
