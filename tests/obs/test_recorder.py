"""FlightRecorder: bounded memory, eviction order, knob validation."""

import pytest

from repro.errors import ConfigError
from repro.obs.recorder import (
    DEFAULT_RECORDER_CAPACITY,
    FlightRecorder,
    resolve_recorder_capacity,
)


class TestRingBuffer:
    def test_records_in_order_with_monotone_seq(self):
        rec = FlightRecorder(capacity=8)
        for i in range(5):
            rec.record("k", float(i * 10), device=i % 2)
        events = rec.events()
        assert [e.seq for e in events] == [0, 1, 2, 3, 4]
        assert [e.t_ns for e in events] == [0.0, 10.0, 20.0, 30.0, 40.0]
        assert len(rec) == 5
        assert rec.dropped == 0

    def test_eviction_drops_oldest_first(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("k", float(i))
        events = rec.events()
        # exactly the last `capacity` records survive, oldest first
        assert [e.seq for e in events] == [6, 7, 8, 9]
        assert rec.dropped == 6
        assert len(rec) == 4
        assert rec.next_seq == 10

    def test_capacity_one(self):
        rec = FlightRecorder(capacity=1)
        rec.record("a", 1.0)
        rec.record("b", 2.0)
        events = rec.events()
        assert len(events) == 1 and events[0].kind == "b"
        assert rec.dropped == 1

    def test_events_filters_by_kind_and_seq(self):
        rec = FlightRecorder(capacity=16)
        rec.record("fault.kill", 1.0, device=1)
        rec.record("serve.retry", 2.0, tenant="t")
        rec.record("fault.detect", 3.0, device=1)
        kills = rec.events(kinds=("fault.kill", "fault.detect"))
        assert [e.kind for e in kills] == ["fault.kill", "fault.detect"]
        late = rec.events(since_seq=2)
        assert [e.kind for e in late] == ["fault.detect"]

    def test_snapshot_is_json_ready_and_omits_empty_fields(self):
        rec = FlightRecorder(capacity=4)
        rec.record("fault.kill", 5.0, device=2)
        rec.record("serve.retry", 6.0, tenant="kv", attempt=1)
        snap = rec.snapshot()
        assert snap[0] == {"seq": 0, "t_ns": 5.0, "kind": "fault.kill",
                           "device": 2}
        assert snap[1]["tenant"] == "kv"
        assert snap[1]["detail"] == {"attempt": 1}
        assert "tenant" not in snap[0]


class TestCapacityKnob:
    def test_default(self):
        assert resolve_recorder_capacity(None) == DEFAULT_RECORDER_CAPACITY

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RECORDER_CAPACITY", "32")
        assert resolve_recorder_capacity(64) == 64
        assert resolve_recorder_capacity(None) == 32

    def test_rejects_non_integer_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RECORDER_CAPACITY", "many")
        with pytest.raises(ConfigError, match="integer"):
            resolve_recorder_capacity(None)

    def test_rejects_non_positive(self, monkeypatch):
        with pytest.raises(ConfigError, match=">= 1"):
            resolve_recorder_capacity(0)
        monkeypatch.setenv("REPRO_RECORDER_CAPACITY", "-3")
        with pytest.raises(ConfigError, match=">= 1"):
            resolve_recorder_capacity(None)
