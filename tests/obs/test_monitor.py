"""SLOMonitor: burn-rate math, transition alerting, fault alerts, knobs."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.obs.monitor import (
    DEFAULT_BURN_THRESHOLD,
    Alert,
    SLObjective,
    SLOMonitor,
    default_objectives,
    resolve_burn_threshold,
    resolve_monitoring,
)
from repro.obs.recorder import FlightRecorder
from repro.sim.stats import StatsRegistry

BEAT_NS = 1_000.0
FAST_NS = 2_000.0
SLOW_NS = 6_000.0


def _monitor(objective=None, recorder=None, **kwargs):
    registry = StatsRegistry()
    objectives = {"t": objective or SLObjective()}
    monitor = SLOMonitor(registry, objectives,
                         fast_window_ns=kwargs.pop("fast", FAST_NS),
                         slow_window_ns=kwargs.pop("slow", SLOW_NS),
                         recorder=recorder, **kwargs)
    return registry, monitor


def _feed(registry, served=0, failed=0, expired=0, shed=0):
    registry.add("serve.t.served", served)
    registry.add("serve.t.failed", failed)
    registry.add("serve.t.expired", expired)
    registry.add("serve.t.shed_queue_full", shed)


def _model_burn(history, now_ns, horizon_ns, budget):
    """Mirror of SLOMonitor._burn_of over _horizon_deltas windows.

    ``history`` holds (end_ns, served, bad) per closed window; windows
    overlapping the horizon count whole, exactly as the monitor slides.
    """
    lo = now_ns - horizon_ns
    served = sum(s for end, s, _ in history if end > lo)
    bad = sum(b for end, _, b in history if end > lo)
    total = served + bad
    if total <= 0:
        return 0.0
    return (bad / total) / budget


class TestBurnMath:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 8), st.integers(0, 4)),
        min_size=1, max_size=24))
    def test_alert_active_iff_both_windows_exceed_threshold(self, traffic):
        """The defining property: burn state matches the window model and
        the alert is active exactly when fast AND slow burns clear the
        threshold."""
        objective = SLObjective()
        registry, monitor = _monitor(objective)
        history = []
        was_active = False
        for beat, (served, failed, expired) in enumerate(traffic, start=1):
            _feed(registry, served=served, failed=failed, expired=expired)
            now = beat * BEAT_NS
            fired = monitor.evaluate(now)
            history.append((now, served, failed + expired))
            fast = _model_burn(history, now, FAST_NS, objective.error_budget)
            slow = _model_burn(history, now, SLOW_NS, objective.error_budget)
            got_fast, got_slow, active = monitor.burn_state("t")
            assert got_fast == pytest.approx(fast)
            assert got_slow == pytest.approx(slow)
            expect_active = (fast >= objective.burn_threshold
                            and slow >= objective.burn_threshold)
            assert active == expect_active
            # transition-edge semantics: fires only on inactive -> active
            burn_fired = [a for a in fired if a.kind == "burn_rate"]
            assert len(burn_fired) == (1 if expect_active
                                       and not was_active else 0)
            was_active = expect_active

    def test_fast_spike_with_healthy_history_stays_quiet(self):
        registry, monitor = _monitor(fast=BEAT_NS)
        for beat in range(1, 6):             # healthy history fills slow
            _feed(registry, served=20)
            assert monitor.evaluate(beat * BEAT_NS) == []
        _feed(registry, served=10, failed=5)  # fast burn 3.3x, slow 0.43x
        fired = monitor.evaluate(6 * BEAT_NS)
        fast, slow, active = monitor.burn_state("t")
        assert fast >= DEFAULT_BURN_THRESHOLD > slow
        assert not active and fired == []

    def test_sustained_failure_fires_once_then_clears(self):
        registry, monitor = _monitor()
        fired_total = []
        for beat in range(1, 5):
            _feed(registry, served=5, failed=5)   # burn 5x in both windows
            fired_total.extend(monitor.evaluate(beat * BEAT_NS))
        assert [a.kind for a in fired_total] == ["burn_rate"]
        alert = fired_total[0]
        assert alert.severity == "page" and alert.tenant == "t"
        assert alert.at_ns == BEAT_NS
        assert alert.fast_burn == pytest.approx(5.0)
        # traffic stops; the windows drain and the alert clears once
        clear_at = None
        for beat in range(5, 14):
            monitor.evaluate(beat * BEAT_NS)
            if monitor.clears and clear_at is None:
                clear_at = monitor.clears[-1][2]
        assert monitor.clears == [("burn_rate", "t", clear_at)]
        assert not monitor.burn_state("t")[2]

    def test_zero_traffic_is_silent(self):
        registry, monitor = _monitor()
        for beat in range(1, 8):
            assert monitor.evaluate(beat * BEAT_NS) == []
        assert monitor.burn_state("t") == (0.0, 0.0, False)


class TestP99Ceiling:
    def test_windowed_p99_over_ceiling_pages_ticket(self):
        objective = SLObjective(p99_ceiling_ns=1_000.0)
        registry, monitor = _monitor(objective)
        registry.observe_many("serve.t.latency_ns", [500.0] * 10)
        _feed(registry, served=10)
        assert monitor.evaluate(BEAT_NS) == []
        registry.observe_many("serve.t.latency_ns", [5_000.0] * 10)
        _feed(registry, served=10)
        fired = monitor.evaluate(2 * BEAT_NS)
        assert [a.kind for a in fired] == ["p99"]
        assert fired[0].severity == "ticket"
        assert fired[0].value > 1_000.0

    def test_p99_alert_clears_when_tail_recovers(self):
        objective = SLObjective(p99_ceiling_ns=1_000.0)
        registry, monitor = _monitor(objective, fast=BEAT_NS)
        registry.observe_many("serve.t.latency_ns", [5_000.0] * 4)
        monitor.evaluate(BEAT_NS)
        registry.observe_many("serve.t.latency_ns", [100.0] * 4)
        monitor.evaluate(2 * BEAT_NS)
        assert ("p99", "t", 2 * BEAT_NS) in monitor.clears


class TestFaultAlerts:
    def test_detection_records_surface_as_typed_alerts(self):
        recorder = FlightRecorder(capacity=16)
        registry, monitor = _monitor(recorder=recorder)
        recorder.record("fault.detect", 700.0, device=1)
        recorder.record("fault.stall", 800.0, device=2)
        fired = monitor.evaluate(BEAT_NS)
        assert [(a.kind, a.severity, a.device) for a in fired] == [
            ("device_down", "page", 1),
            ("device_degraded", "ticket", 2),
        ]
        # Alert.value carries the detection timestamp -> MTTA derivable
        assert fired[0].value == 700.0
        assert fired[0].at_ns == BEAT_NS

    def test_recorder_watermark_prevents_duplicate_alerts(self):
        recorder = FlightRecorder(capacity=16)
        registry, monitor = _monitor(recorder=recorder)
        recorder.record("fault.poison", 500.0, device=None)
        assert [a.kind for a in monitor.evaluate(BEAT_NS)] == ["poison"]
        assert monitor.evaluate(2 * BEAT_NS) == []
        recorder.record("fault.link_flap", 2_500.0, device=3)
        assert [a.kind for a in monitor.evaluate(3 * BEAT_NS)] \
            == ["device_degraded"]

    def test_non_fault_records_do_not_alert(self):
        recorder = FlightRecorder(capacity=16)
        registry, monitor = _monitor(recorder=recorder)
        recorder.record("serve.launch", 100.0, tenant="t", batch=4)
        recorder.record("sched.issue", 200.0, device=0)
        assert monitor.evaluate(BEAT_NS) == []


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 8)),
        min_size=1, max_size=16))
    def test_identical_inputs_identical_alert_stream(self, traffic):
        def run():
            registry, monitor = _monitor()
            for beat, (served, failed) in enumerate(traffic, start=1):
                _feed(registry, served=served, failed=failed)
                monitor.evaluate(beat * BEAT_NS)
            return ([a.to_dict() for a in monitor.alerts], monitor.clears)

        assert run() == run()


class TestValidation:
    def test_objective_floor_must_leave_budget(self):
        with pytest.raises(ConfigError, match="attainment_floor"):
            SLObjective(attainment_floor=1.0)
        with pytest.raises(ConfigError, match="attainment_floor"):
            SLObjective(attainment_floor=-0.1)

    def test_objective_rejects_bad_ceiling_and_threshold(self):
        with pytest.raises(ConfigError, match="p99_ceiling_ns"):
            SLObjective(p99_ceiling_ns=0.0)
        with pytest.raises(ConfigError, match="burn_threshold"):
            SLObjective(burn_threshold=0.0)
        with pytest.raises(ConfigError, match="burn_threshold"):
            SLObjective(burn_threshold=math.inf)

    def test_monitor_rejects_inverted_windows(self):
        registry = StatsRegistry()
        with pytest.raises(ConfigError, match="must not exceed"):
            SLOMonitor(registry, {"t": SLObjective()},
                       fast_window_ns=10_000.0, slow_window_ns=5_000.0)
        with pytest.raises(ConfigError, match="positive"):
            SLOMonitor(registry, {"t": SLObjective()},
                       fast_window_ns=0.0)

    def test_resolve_monitoring_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_MONITOR", raising=False)
        assert resolve_monitoring(None) is True
        monkeypatch.setenv("REPRO_MONITOR", "0")
        assert resolve_monitoring(None) is False
        assert resolve_monitoring(True) is True     # explicit wins
        monkeypatch.setenv("REPRO_MONITOR", "yes")
        with pytest.raises(ConfigError, match="REPRO_MONITOR"):
            resolve_monitoring(None)

    def test_resolve_burn_threshold_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_MONITOR_BURN", raising=False)
        assert resolve_burn_threshold(None) == DEFAULT_BURN_THRESHOLD
        monkeypatch.setenv("REPRO_MONITOR_BURN", "3.5")
        assert resolve_burn_threshold(None) == 3.5
        assert resolve_burn_threshold(1.5) == 1.5   # explicit wins
        monkeypatch.setenv("REPRO_MONITOR_BURN", "fast")
        with pytest.raises(ConfigError, match="REPRO_MONITOR_BURN"):
            resolve_burn_threshold(None)
        monkeypatch.setenv("REPRO_MONITOR_BURN", "-1")
        with pytest.raises(ConfigError, match="> 0"):
            resolve_burn_threshold(None)

    def test_default_objectives_inherit_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_MONITOR_BURN", "4.0")
        slos = default_objectives(["a", "b"])
        assert set(slos) == {"a", "b"}
        assert all(o.burn_threshold == 4.0 for o in slos.values())

    def test_alert_to_dict_shapes(self):
        burn = Alert("burn_rate", 10.0, "page", tenant="t",
                     fast_burn=3.0, slow_burn=2.5)
        assert burn.to_dict() == {
            "kind": "burn_rate", "at_ns": 10.0, "severity": "page",
            "tenant": "t", "fast_burn": 3.0, "slow_burn": 2.5,
        }
        down = Alert("device_down", 20.0, "page", device=1, value=15.0,
                     detail="fault.detect at 15 ns")
        assert down.to_dict() == {
            "kind": "device_down", "at_ns": 20.0, "severity": "page",
            "device": 1, "value": 15.0, "detail": "fault.detect at 15 ns",
        }
