"""Report CLI: --format json output and nonzero exit on malformed traces."""

import json

from repro.obs.report import main as report_main


def _trace(tmp_path, events):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps({"traceEvents": events}))
    return str(path)


def _request(ts, dur, tenant="scan", index=0, tid=1):
    return [
        {"ph": "B", "ts": ts, "pid": 1, "tid": tid, "name": "serve.request",
         "args": {"tenant": tenant, "index": index}},
        {"ph": "B", "ts": ts, "pid": 1, "tid": tid, "name": "serve.launch"},
        {"ph": "E", "ts": ts + dur * 0.8, "pid": 1, "tid": tid},
        {"ph": "E", "ts": ts + dur, "pid": 1, "tid": tid},
    ]


class TestJsonFormat:
    def test_json_output_parses_and_matches_trace(self, tmp_path, capsys):
        events = _request(0.0, 10.0, index=0) + _request(20.0, 4.0, index=1)
        assert report_main([_trace(tmp_path, events),
                            "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stages"]["serve.request"]["count"] == 2
        assert payload["critical_us"] == 14.0
        assert payload["tenants"]["scan"]["count"] == 2
        slowest = payload["slowest"]
        assert [row["index"] for row in slowest] == [0, 1]
        assert slowest[0]["duration_us"] == 10.0
        assert slowest[0]["chain"][0]["name"] == "serve.launch"

    def test_text_format_still_default(self, tmp_path, capsys):
        assert report_main([_trace(tmp_path, _request(0.0, 5.0))]) == 0
        out = capsys.readouterr().out
        assert "self-time by stage" in out


class TestMalformedInput:
    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert report_main([str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text("{oops")
        assert report_main([str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_non_list_trace_events_exits_2(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"traceEvents": {"ph": "B"}}))
        assert report_main([str(path)]) == 2
        assert "not a list" in capsys.readouterr().err

    def test_unbalanced_spans_exit_2(self, tmp_path, capsys):
        events = [{"ph": "B", "ts": 0.0, "pid": 1, "tid": 1,
                   "name": "serve.request", "args": {}}]
        assert report_main([_trace(tmp_path, events)]) == 2
        assert "unclosed" in capsys.readouterr().err

    def test_json_format_also_fails_closed(self, tmp_path, capsys):
        events = [{"ph": "E", "ts": 1.0, "pid": 1, "tid": 1}]
        assert report_main([_trace(tmp_path, events),
                            "--format", "json"]) == 2
        assert "empty stack" in capsys.readouterr().err
