"""Chrome trace-event export + run-manifest schema tests."""

import json

from repro.obs.export import (
    MANIFEST_SCHEMA,
    run_manifest,
    to_chrome_trace,
    write_manifest,
    write_trace,
)
from repro.obs.report import build_report, parse_events
from repro.obs.tracer import Tracer


def _sample_tracer() -> Tracer:
    """Host request chain plus two device-side launches, one linked."""
    tracer = Tracer()
    lane = tracer.alloc_tid(0)
    root = tracer.begin("serve.request", 0.0, tid=lane, tenant="web",
                        index=0)
    queue = tracer.record("serve.queue", 0.0, 5.0, parent=root)
    assert queue is not None
    sub_lane = tracer.alloc_tid(1)
    sub = tracer.record("cluster.sub_launch", 5.0, 20.0, parent=root,
                        pid=1, tid=sub_lane)
    tracer.record("exec.batched", 6.0, 19.0, pid=1, instance=3)
    tracer.link_instance(1, 3, sub, sub_lane)
    tracer.instant("exec.fallback", 7.0, pid=1, reason="atomics")
    tracer.end(root, 20.0, outcome="served")
    return tracer


def _validate_chrome(events: list[dict]) -> None:
    """The invariants chrome://tracing / Perfetto rely on."""
    stacks: dict[tuple, list[str]] = {}
    last_ts = None
    for event in events:
        phase = event["ph"]
        assert phase in ("M", "B", "E", "i", "C")
        if phase == "M":
            continue
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int), \
            f"unresolved lane on {event['name']}"
        if last_ts is not None:
            assert event["ts"] >= last_ts, "timestamps must be sorted"
        last_ts = event["ts"]
        lane = (event["pid"], event["tid"])
        if phase == "B":
            stacks.setdefault(lane, []).append(event["name"])
        elif phase == "E":
            assert stacks.get(lane), f"E without B on lane {lane}"
            stacks[lane].pop()
    assert not any(stacks.values()), f"unclosed B events: {stacks}"


class TestChromeTrace:
    def test_schema_and_stack_discipline(self):
        payload = to_chrome_trace(_sample_tracer())
        assert payload["displayTimeUnit"] == "ns"
        _validate_chrome(payload["traceEvents"])

    def test_metadata_names_processes(self):
        payload = to_chrome_trace(_sample_tracer())
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["pid"]: e["args"]["name"] for e in meta}
        assert names[0] == "serving-host"
        assert names[1] == "device0"

    def test_zero_duration_childless_becomes_instant(self):
        payload = to_chrome_trace(_sample_tracer())
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert {e["name"] for e in instants} == {"exec.fallback"}

    def test_linked_exec_nests_inside_sub_launch(self):
        # the instance-linked exec span must land between its adopted
        # parent's B and E on the device lane
        events = to_chrome_trace(_sample_tracer())["traceEvents"]
        device = [e for e in events
                  if e["ph"] in ("B", "E") and e["pid"] == 1]
        names = [(e["ph"], e["name"]) for e in device]
        assert names == [("B", "cluster.sub_launch"), ("B", "exec.batched"),
                         ("E", "exec.batched"), ("E", "cluster.sub_launch")]

    def test_counter_samples_become_c_events(self):
        counters = [("device0.l2.hit_rate", 1, 1_000.0, 0.75)]
        events = to_chrome_trace(_sample_tracer(), counters)["traceEvents"]
        [c] = [e for e in events if e["ph"] == "C"]
        assert c["args"]["value"] == 0.75
        assert c["ts"] == 1.0  # ns scaled to us

    def test_ns_to_us_scaling(self):
        events = to_chrome_trace(_sample_tracer())["traceEvents"]
        root_b = next(e for e in events
                      if e["ph"] == "B" and e["name"] == "serve.request")
        root_e = next(e for e in events
                      if e["ph"] == "E" and e["name"] == "serve.request")
        assert root_b["ts"] == 0.0
        assert root_e["ts"] == 0.02  # 20 ns

    def test_report_round_trip(self, tmp_path):
        path = write_trace(_sample_tracer(), str(tmp_path / "t.json"))
        with open(path) as fh:
            events = json.load(fh)["traceEvents"]
        roots = parse_events(events)
        report = build_report(roots)
        assert report["stages"]["serve.request"]["count"] == 1
        assert report["tenants"]["web"]["count"] == 1


class TestManifest:
    def test_schema_and_sorted_counters(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        from repro.sim.stats import StatsRegistry
        stats = StatsRegistry()
        stats.add("z.last")
        stats.add("a.first")
        manifest = run_manifest(tracer=_sample_tracer(), stats=stats,
                                seed=42, extra={"experiment": "unit"})
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["seed"] == 42
        assert manifest["experiment"] == "unit"
        assert list(manifest["counters"]) == ["a.first", "z.last"]
        assert manifest["env"]["REPRO_TRACE"] == "1"
        assert "serve.request" in manifest["span_aggregates"]

    def test_write_manifest_is_stable_json(self, tmp_path):
        path = str(tmp_path / "m.json")
        write_manifest(path, seed=1)
        with open(path) as fh:
            text = fh.read()
        assert json.loads(text)["seed"] == 1
        # stable formatting: sorted keys survive a round trip
        assert text == json.dumps(json.loads(text), indent=2,
                                  sort_keys=True) + "\n"
