"""End-to-end tracing of the serving engine on a 2-device cluster.

The guarantees the subsystem sells: (a) one serving request's spans
stitch into a single rooted tree even when its work fans out across
devices, (b) the exported Chrome trace keeps stack discipline and sorted
timestamps, and (c) running with tracing off is byte-identical — in
results *and* simulated timings — to running with it on.
"""

import pytest

from repro.cluster import make_cluster_platform
from repro.obs import tracer as obs_tracer
from repro.obs.export import to_chrome_trace
from repro.obs.report import build_report, parse_events
from repro.serve import ArrivalSpec, BatchPolicy, ServingEngine, TenantSpec

EXEC_SPANS = {"exec.interpreter", "exec.batched", "exec.simt", "exec.point"}


def _tenants(requests: int = 10) -> list[TenantSpec]:
    # slices=4 on a 2-device interleaved cluster: every launch fans out
    # to both devices, so cross-device stitching is actually exercised
    return [
        TenantSpec(name, "vecadd",
                   arrivals=ArrivalSpec("poisson", rate_rps=1e7,
                                        requests=requests),
                   size=1 << 10, slices=4)
        for name in ("web", "bulk")
    ]


def _run(trace: bool):
    prior = obs_tracer.ENABLED
    obs_tracer.set_enabled(trace)
    try:
        platform = make_cluster_platform(num_devices=2, backend="batched")
        engine = ServingEngine(
            platform, _tenants(), scheduler="wfq",
            batch=BatchPolicy(max_batch=4, max_wait_ns=2_000.0),
        )
        report = engine.run()
        tracer = obs_tracer.tracer_of(platform.sim) if trace else None
    finally:
        obs_tracer.set_enabled(prior)
    return platform, engine, report, tracer


def _signature(report) -> dict:
    return {
        "span_ns": report.span_ns,
        "served": report.served,
        "latencies": [list(t.latencies.samples) for t in report.tenants],
        "completions": [list(t.completion_times) for t in report.tenants],
    }


@pytest.fixture(scope="module")
def traced_run():
    return _run(True)


class TestRequestTree:
    def test_every_parent_link_resolves(self, traced_run):
        _, _, _, tracer = traced_run
        spans = tracer.finalize()
        ids = {s.span_id for s in spans}
        assert spans
        for span in spans:
            assert span.parent_id is None or span.parent_id in ids

    def test_request_spans_form_single_tree_across_devices(self, traced_run):
        _, _, report, tracer = traced_run
        spans = tracer.finalize()
        by_id = {s.span_id: s for s in spans}

        def root_of(span):
            while span.parent_id is not None:
                span = by_id[span.parent_id]
            return span

        requests = [s for s in spans if s.name == "serve.request"]
        assert len(requests) == report.offered

        # every serving-stage span roots at a serve.request
        for span in spans:
            if span.name.startswith("serve."):
                assert root_of(span).name == "serve.request"

        # pids reachable from each request root: at least one request's
        # tree spans the host AND both devices (fan-out stitched back)
        pids_by_root: dict[int, set[int]] = {}
        for span in spans:
            root = root_of(span)
            if root.name == "serve.request":
                pids_by_root.setdefault(root.span_id, set()).add(span.pid)
        assert any(pids >= {0, 1, 2} for pids in pids_by_root.values())

    def test_exec_spans_adopted_under_their_sub_launch(self, traced_run):
        _, _, _, tracer = traced_run
        spans = tracer.finalize()
        by_id = {s.span_id: s for s in spans}
        execs = [s for s in spans if s.name in EXEC_SPANS]
        assert execs
        for span in execs:
            assert span.parent_id is not None, \
                f"unstitched exec span {span!r}"
            parent = by_id[span.parent_id]
            assert parent.name == "cluster.sub_launch"
            assert parent.pid == span.pid
            # adoption also inherits the sub-launch's swim-lane
            assert span.tid == parent.tid

    def test_utilization_sampler_ran(self, traced_run):
        _, engine, _, _ = traced_run
        assert engine._util is not None
        samples = engine._util.counter_samples()
        assert samples
        names = {name for name, _, _, _ in samples}
        assert any("occupancy" in name for name in names)
        summary = engine._util.summary()
        assert set(summary) == {"device0", "device1"}


class TestExportedTrace:
    def test_chrome_schema_holds_on_real_run(self, traced_run):
        _, engine, _, tracer = traced_run
        payload = to_chrome_trace(tracer,
                                  counters=engine._util.counter_samples())
        events = payload["traceEvents"]
        last_ts = None
        stacks: dict[tuple, int] = {}
        for event in events:
            if event["ph"] == "M":
                continue
            assert isinstance(event["tid"], int)
            if last_ts is not None:
                assert event["ts"] >= last_ts
            last_ts = event["ts"]
            lane = (event["pid"], event["tid"])
            if event["ph"] == "B":
                stacks[lane] = stacks.get(lane, 0) + 1
            elif event["ph"] == "E":
                assert stacks.get(lane, 0) > 0, f"E without B on {lane}"
                stacks[lane] -= 1
        assert not any(stacks.values())

    def test_report_parses_and_attributes_tenants(self, traced_run):
        _, _, report, tracer = traced_run
        roots = parse_events(to_chrome_trace(tracer)["traceEvents"])
        built = build_report(roots)
        assert set(built["tenants"]) == {"web", "bulk"}
        total_requests = sum(a["count"] for a in built["tenants"].values())
        assert total_requests == report.offered


class TestTracingIsPureObservation:
    def test_off_runs_identical_and_on_run_matches(self, traced_run):
        _, engine_on, report_on, _ = traced_run
        _, engine_a, report_a, _ = _run(False)
        _, engine_b, report_b, _ = _run(False)
        # off vs off: the workload itself is deterministic
        assert engine_a.result_snapshots() == engine_b.result_snapshots()
        assert _signature(report_a) == _signature(report_b)
        # off vs on: tracing changed nothing — results or sim timings
        assert engine_a.result_snapshots() == engine_on.result_snapshots()
        assert _signature(report_a) == _signature(report_on)

    def test_disabled_run_allocates_no_tracer(self):
        platform, _, _, _ = _run(False)
        assert not hasattr(platform.sim, "_obs_tracer")
