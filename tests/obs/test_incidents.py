"""Incident bundles end to end: coherent timelines, self-grading against
the armed fault plan, CLI rendering, and the observation-only invariant."""

import json

import pytest

from repro.cluster import make_cluster_platform
from repro.faults import FaultEvent, FaultPlan
from repro.faults.injector import DEFAULT_HEARTBEAT_NS
from repro.obs.incidents import (
    INCIDENT_SCHEMA,
    grade_against_plan,
    main as incidents_main,
    render_bundle,
)
from repro.serve import ArrivalSpec, RetryPolicy, ServingEngine, TenantSpec

KILL_MID_TRAFFIC = FaultPlan(events=(
    FaultEvent("device_fail", at_ns=3_000.0, device=1),
))


def _scan_tenant(requests=16):
    return TenantSpec(
        "scan", "olap",
        arrivals=ArrivalSpec("poisson", rate_rps=2e6, requests=requests),
        qos_class="interactive", slo_ns=5_000_000.0, size=1 << 17,
        slices=4, placement="replicated",
        retry=RetryPolicy(max_retries=3, backoff_ns=500.0,
                          jitter_ns=200.0, deadline_aware=True),
    )


def _kill_run(plan=KILL_MID_TRAFFIC, incident_dir=None, **engine_kwargs):
    platform = make_cluster_platform(num_devices=4, backend="batched")
    injector = platform.runtime.arm_faults(plan)
    engine = ServingEngine(platform, [_scan_tenant()], monitoring=True,
                           incident_dir=incident_dir, **engine_kwargs)
    report = engine.run()
    return platform, injector, engine, report


class TestIncidentBundles:
    def test_device_kill_produces_coherent_bundle(self):
        _, injector, engine, report = _kill_run()
        assert report.tenant("scan").served == 16
        assert len(engine.reporter.bundles) >= 1
        sources = {b["trigger"]["source"] for b in engine.reporter.bundles}
        assert "fault_detected" in sources or "alert" in sources
        bundle = engine.reporter.bundles[-1]   # fullest ring snapshot
        assert bundle["schema"] == INCIDENT_SCHEMA
        kinds = [row["kind"] for row in bundle["timeline"]]
        assert "fault.kill" in kinds
        assert "fault.detect" in kinds
        # kill <= detect <= recover ordering in the reconstructed timeline
        t = {row["kind"]: row["t_ns"] for row in bundle["timeline"]}
        assert t["fault.kill"] <= t["fault.detect"]
        recover = [row for row in bundle["timeline"]
                   if row["kind"] == "recovery.failover"]
        assert recover and recover[0]["t_ns"] >= t["fault.detect"]
        assert bundle["counters"]["fault.device_kills"] == 1

    def test_correlation_grades_the_armed_plan(self):
        _, injector, engine, _ = _kill_run()
        rows = engine.reporter.bundles[-1].get("correlation")
        assert rows is not None and len(rows) == 1
        row = rows[0]
        assert row["kind"] == "device_fail" and row["device"] == 1
        assert row["detected_ns"] is not None
        # detection is heartbeat-quantized: at most one beat after the kill
        assert 0.0 <= row["mttd_ns"] <= DEFAULT_HEARTBEAT_NS
        assert row["mttr_ns"] is not None and row["mttr_ns"] >= 0.0
        # replicated placement fails over without re-copy
        assert row["recovered_ns"] >= row["detected_ns"]

    def test_grade_recall_one_and_mtta_within_a_beat(self):
        _, injector, engine, _ = _kill_run()
        grade = grade_against_plan(injector, engine.monitor.alerts)
        assert grade["events"] == 1
        assert grade["recall"] == 1.0
        assert grade["precision"] == 1.0
        assert grade["max_mtta_ns"] <= engine._monitor_interval
        assert grade["mean_mttd_ns"] > 0.0

    def test_healthy_run_is_silent(self):
        _, injector, engine, _ = _kill_run(plan=FaultPlan.none())
        assert engine.monitor.alerts == []
        assert engine.reporter.bundles == []
        grade = grade_against_plan(injector, engine.monitor.alerts)
        assert grade["recall"] == 1.0 and grade["precision"] == 1.0

    def test_bundles_written_to_incident_dir(self, tmp_path):
        _, _, engine, _ = _kill_run(incident_dir=str(tmp_path))
        paths = engine.reporter.paths
        assert len(paths) == len(engine.reporter.bundles)
        with open(paths[0]) as fh:
            on_disk = json.load(fh)
        assert on_disk["schema"] == INCIDENT_SCHEMA
        assert on_disk["seq"] == engine.reporter.bundles[0]["seq"]
        # bundles are wall-clock free: every timestamp is simulated ns
        assert "wall" not in json.dumps(on_disk)

    def test_cooldown_collapses_alert_storm(self):
        _, _, engine, _ = _kill_run()
        # one kill must not fan out into one bundle per symptom; the
        # cooldown caps distinct trigger keys, not repeated firings
        triggers = [b["trigger"]["source"] for b in engine.reporter.bundles]
        assert len(triggers) == len(set(
            (b["trigger"]["source"], b["trigger"].get("kind"),
             b["trigger"].get("device")) for b in engine.reporter.bundles))

    def test_render_bundle_mentions_trigger_and_correlation(self):
        _, _, engine, _ = _kill_run()
        text = render_bundle(engine.reporter.bundles[-1])
        assert "incident #" in text
        assert "fault correlation" in text
        assert "device=1" in text


class TestObservationOnly:
    def _signature(self, monitoring):
        platform = make_cluster_platform(num_devices=4, backend="batched")
        platform.runtime.arm_faults(KILL_MID_TRAFFIC)
        engine = ServingEngine(platform, [_scan_tenant()],
                               monitoring=monitoring)
        report = engine.run()
        return (engine.result_snapshots(), report.aggregate.samples,
                {k: v for k, v in platform.stats.snapshot().items()
                 if not k.startswith("monitor.")})

    def test_monitoring_never_changes_results(self):
        assert self._signature(True) == self._signature(False)

    def test_monitor_off_builds_nothing(self, monkeypatch):
        monkeypatch.setenv("REPRO_MONITOR", "0")
        platform = make_cluster_platform(num_devices=4, backend="batched")
        engine = ServingEngine(platform, [_scan_tenant()])
        assert engine.recorder is None
        assert engine.monitor is None
        assert engine.reporter is None
        assert platform.runtime.recorder is None
        assert platform.runtime.incidents is None
        report = engine.run()
        assert report.tenant("scan").served == 16

    def test_identical_runs_identical_bundles(self):
        def bundles():
            _, _, engine, _ = _kill_run()
            return json.dumps(engine.reporter.bundles, sort_keys=True)
        assert bundles() == bundles()


class TestEngineKnobs:
    def test_unknown_objective_tenant_rejected(self):
        from repro.errors import ConfigError
        from repro.obs.monitor import SLObjective
        platform = make_cluster_platform(num_devices=4, backend="batched")
        with pytest.raises(ConfigError, match="ghost"):
            ServingEngine(platform, [_scan_tenant()], monitoring=True,
                          objectives={"ghost": SLObjective()})

    def test_monitor_interval_must_be_positive(self):
        from repro.errors import ConfigError
        platform = make_cluster_platform(num_devices=4, backend="batched")
        with pytest.raises(ConfigError, match="monitor_interval_ns"):
            ServingEngine(platform, [_scan_tenant()],
                          monitor_interval_ns=0.0)

    def test_recorder_capacity_bounds_engine_ring(self):
        platform = make_cluster_platform(num_devices=4, backend="batched")
        platform.runtime.arm_faults(KILL_MID_TRAFFIC)
        engine = ServingEngine(platform, [_scan_tenant()], monitoring=True,
                               recorder_capacity=8)
        engine.run()
        assert len(engine.recorder) <= 8
        assert engine.recorder.dropped > 0


class TestIncidentsCLI:
    def test_renders_bundle_file(self, tmp_path, capsys):
        _, _, engine, _ = _kill_run(incident_dir=str(tmp_path))
        assert incidents_main([engine.reporter.paths[0]]) == 0
        out = capsys.readouterr().out
        assert "incident #0" in out

    def test_malformed_json_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "incident-0000.json"
        bad.write_text("{not json")
        assert incidents_main([str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_wrong_schema_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "other.json"
        bad.write_text(json.dumps({"schema": "something-else"}))
        assert incidents_main([str(bad)]) == 2
        assert INCIDENT_SCHEMA in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert incidents_main([str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err
