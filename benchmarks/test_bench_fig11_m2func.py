"""Fig 11 benchmark: M2func latency/throughput deep-dive.

Paper reference: the direct-MMIO path saturates ~47x earlier than M2func
(Fig 11a); at equal 600 ns link latency M2func still wins by up to 1.63x
on fine-grained kernels via fewer round trips (Fig 11b).
"""

from repro.experiments.fig11 import run_fig11a, run_fig11b


def test_fig11a_latency_throughput(once):
    result = once(run_fig11a, scale_name="small",
                  interarrival_sweep=(8_000.0, 2_000.0, 500.0))
    heavy = result.rows[-1]      # highest offered load
    # under load, the serializing register pair has far higher P95
    assert heavy["cxl_io_dr_p95_us"] > 5 * heavy["m2func_p95_us"]
    # M2func sustains higher throughput than direct MMIO
    assert heavy["m2func_mrps"] > heavy["cxl_io_dr_mrps"]


def test_fig11b_equal_latency(once):
    result = once(run_fig11b)
    by_name = {row["workload"]: row for row in result.rows}
    # fine-grained kernels gain the most (paper: up to 1.63x)
    assert by_name["KVS_A"]["vs_rb"] > 1.5
    # coarse kernels see little protocol-level gain (paper: ~1.0x)
    assert by_name["SPMV"]["vs_rb"] < 1.15
