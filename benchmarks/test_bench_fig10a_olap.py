"""Fig 10a benchmark: OLAP Evaluate speedups.

Paper reference (GMEAN over TPC-H Q6/Q14, SSB Q1.1-1.3): CPU-NDP 55x,
M2NDP 73.4x (up to 128x), Ideal NDP 81x; M2NDP sustains 90.7% of internal
DRAM bandwidth and lands within ~10% of Ideal.
"""

from repro.experiments.fig10 import run_fig10a
from repro.sim.stats import geometric_mean


def test_fig10a_olap(once):
    result = once(run_fig10a, scale_name="small")
    assert all(row["correct"] for row in result.rows)
    m2ndp = geometric_mean(result.column("m2ndp"))
    cpu_ndp = geometric_mean(result.column("cpu_ndp"))
    ideal = geometric_mean(result.column("ideal"))
    # ordering from the paper: baseline << CPU-NDP < M2NDP < Ideal
    assert 1.0 < cpu_ndp
    assert m2ndp > 20.0            # tens-of-x speedup regime
    assert ideal > m2ndp
    # full-query Amdahl bars improve on the baseline
    assert all(row["norm_runtime"] < 1.0 for row in result.rows)
