"""Fig 10b benchmark: KVStore P95 latency by offload mechanism.

Paper reference: M2func improves end-to-end P95 by 1.38x over the host
baseline; CXL.io direct-MMIO and ring-buffer offloading *degrade* it
(0.29x-0.59x) because µs-scale launch latency dwarfs the 0.77 µs kernel.
"""

from repro.experiments.fig10 import run_fig10b


def test_fig10b_kvstore(once):
    result = once(run_fig10b, scale_name="small")
    for row in result.rows:
        assert row["m2func_improvement"] > 1.0           # paper: 1.38x
        assert row["cxl_io_rb_improvement"] < 1.0        # paper: 0.29x
        assert row["m2func_improvement"] > row["cxl_io_dr_improvement"]
    assert all(row.get("correct", True) for row in result.rows)
