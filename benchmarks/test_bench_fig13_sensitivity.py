"""Fig 13 benchmark: frequency/LtU sensitivity (13a) and dirty host
cachelines (13b).

Paper reference: 1 GHz costs ~10%, 3 GHz gains only 2.5% (bandwidth
bound); speedups grow to 13.1x / 19.4x at 2x/4x LtU; 20-80% dirty lines
cost only 3.1-26.5%.
"""

from repro.experiments.fig13 import (
    run_fig13a_frequency,
    run_fig13a_ltu,
    run_fig13b,
)


def test_fig13a_frequency(once):
    result = once(run_fig13a_frequency, scale_name="small")
    by_freq = {row["freq_ghz"]: row["speedup_vs_default"]
               for row in result.rows}
    assert by_freq[1.0] < 1.0                     # slower at 1 GHz
    assert by_freq[1.0] > 0.55                    # but not linearly slower
    assert 1.0 <= by_freq[3.0] < 1.30             # BW-bound: small gain


def test_fig13a_ltu(once):
    result = once(run_fig13a_ltu, scale_name="small")
    speedups = result.column("speedup")
    assert all(row["correct"] for row in result.rows)
    # the M2NDP speedup grows with link latency (kernels never cross it)
    assert speedups[1] > speedups[0]
    assert speedups[2] > speedups[1]
    ndp = result.column("ndp_runtime_ns")
    assert max(ndp) / min(ndp) < 1.05             # kernel time invariant


def test_fig13b_dirty_cachelines(once):
    result = once(run_fig13b, scale_name="small",
                  dirty_fractions=(0.0, 0.2, 0.4, 0.8))
    assert all(row["correct"] for row in result.rows)
    normalized = result.column("normalized")
    assert normalized[0] == 1.0
    assert all(a <= b * 1.02 for a, b in zip(normalized, normalized[1:]))
    # bounded impact: BI overlaps with other µthreads (paper: <= 26.5%... we
    # allow a wider envelope at small scale)
    assert normalized[-1] < 2.5
