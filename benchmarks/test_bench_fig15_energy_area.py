"""Fig 15 + §IV-F benchmark: energy, perf/energy, and hardware cost.

Paper reference: M2NDP cuts OLAP energy by up to 87.9% (avg 83.9%) and
GPU-workload energy by 78.2% avg; one NDP unit costs 0.83 mm², 32 units
26.4 mm², with an 81% smaller register file and 69% less ALU area than a
GPU SM.
"""

from repro.area.model import (
    alu_area_reduction_vs_sm,
    iso_area_sm_count,
    m2ndp_total_area,
    ndp_unit_area,
    register_file_reduction_vs_sm,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.fig15 import run_fig15_gpu, run_fig15_olap


def test_fig15_olap_energy(once):
    result = once(run_fig15_olap, scale_name="small")
    for row in result.rows:
        assert row["energy_reduction"] > 0.5      # paper: 83.9% average
        assert row["perf_per_energy_gain"] > 10.0


def test_fig15_gpu_energy(once):
    result = once(run_fig15_gpu, scale_name="small")
    for row in result.rows:
        assert row["reduction_vs_baseline"] > 0.2   # paper: 78.2% average


def _area_result() -> ExperimentResult:
    result = ExperimentResult("area", "Hardware cost (§IV-F)")
    unit = ndp_unit_area()
    result.add(metric="ndp_unit_mm2", measured=unit.total_mm2, paper=0.83)
    result.add(metric="total_mm2", measured=m2ndp_total_area(), paper=26.4)
    result.add(metric="iso_area_sms", measured=iso_area_sm_count(), paper=16.2)
    result.add(metric="rf_reduction", measured=register_file_reduction_vs_sm(),
               paper=0.81)
    result.add(metric="alu_reduction", measured=alu_area_reduction_vs_sm(),
               paper=0.69)
    return result


def test_area_model(once):
    result = once(_area_result)
    for row in result.rows:
        assert row["measured"] == __import__("pytest").approx(
            row["paper"], rel=0.12
        )
