"""Fig 10c benchmark: GPU-workload speedups across all NDP configurations.

Paper reference GMEANs over HISTO/SPMV/PGRANK/SSSP/DLRM/OPT: GPU-NDP
Iso-FLOPS 3.25x, 4xFLOPS 5.12x, 16xFLOPS 5.11x, Iso-Area 4.49x, M2NDP
6.35x (max 9.71x), NSU 0.97x.  At bench scale the orderings reproduce
with compressed magnitudes (see EXPERIMENTS.md).
"""

from repro.experiments.fig10 import run_fig10c


def test_fig10c_gpu_workloads(once):
    result = once(run_fig10c, scale_name="small")
    gmean = next(r for r in result.rows if r["workload"] == "GMEAN")
    # M2NDP beats every GPU-NDP variant on average (paper: 6.35 vs <= 5.12)
    assert gmean["m2ndp"] > gmean["gpu_ndp_iso_area"]
    assert gmean["m2ndp"] > gmean["gpu_ndp_iso_flops"]
    # NSU is no better than the baseline (paper: 0.97x)
    assert gmean["nsu"] < 1.2
    # Iso-FLOPS (8 SMs) cannot beat the larger configurations
    assert gmean["gpu_ndp_iso_flops"] <= gmean["gpu_ndp_16x"] * 1.05
    # M2NDP accelerates the memory-bound workloads
    assert gmean["m2ndp"] > 1.0
