"""Fig 12 benchmark: ablations (12a), static-instruction savings (§III-D)
and multi-device scaling (12b).

Paper reference: removing M2func costs up to 2.41x, coarse spawning up to
1.51x, removing scalar address optimization up to 1.20x; memory mapping
saves 3.28-17.6% static instructions; 8 devices scale to 6.45-7.84x.
"""

from repro.experiments.fig12 import (
    run_fig12a,
    run_fig12b,
    static_instruction_savings,
)


def test_fig12a_ablation(once):
    result = once(run_fig12a, scale_name="small")
    for row in result.rows:
        assert row["correct"]
        assert row["wo_m2func"] > 1.0
        # coarse spawning and SIMT-style addressing never help; at small
        # scale bank-conflict timing noise allows a few percent of jitter
        assert row["wo_finegrained"] >= 0.97
        assert row["wo_addr_opt"] >= 0.85
    # at least one workload shows an address-optimization penalty.  The
    # ablation now runs unpinned on the analytic backend, whose roofline
    # hides most of the extra ALU work behind the memory bound — the
    # paper-scale spread (up to 1.20x) needs
    # REPRO_EXPERIMENT_BACKEND=interpreter (see run_fig12a notes).
    assert max(row["wo_addr_opt"] for row in result.rows) > 1.001


def test_instruction_savings(once):
    result = once(static_instruction_savings)
    reductions = result.column("reduction")
    # paper: 3.28-17.6% static instruction reduction
    assert min(reductions) > 0.02
    assert max(reductions) < 0.35


def test_fig12b_scaling(once):
    result = once(run_fig12b, scale_name="small", device_counts=(1, 2, 4, 8))
    for row in result.rows:
        assert row["x1"] >= 0.9
        # more devices always help up to the all-reduce / fixed-cost floor;
        # the paper's near-linear 6.5-7.8x needs paper-scale kernels whose
        # per-device work dwarfs launch/drain overheads (EXPERIMENTS.md)
        assert row["x2"] > 1.2
        assert row["x4"] > row["x2"] * 0.95
        assert row["x8"] > 1.8
