"""Smoke benchmark: fast perf-trajectory tracking for CI.

Runs the Fig 5 offload-timeline model and one Fig 10a OLAP point (TPC-H
Q6, "small" scale) on *both* execution backends, then writes
``BENCH_smoke.json`` with simulated results and wall-clock times.  CI runs
this on every push so the interpreter/batched performance gap — and any
regression in either — is recorded from PR to PR.

Usage::

    PYTHONPATH=src python benchmarks/smoke.py [output.json]
"""

from __future__ import annotations

import json
import platform as platform_mod
import sys
import time

from repro.experiments.fig05 import run_fig5
from repro.workloads import olap
from repro.workloads.base import make_platform, scale

SMOKE_QUERY = "q6"
SMOKE_SCALE = "small"


def bench_fig5() -> dict:
    start = time.perf_counter()
    result = run_fig5()
    wall = time.perf_counter() - start
    return {
        "rows": result.rows,
        "notes": result.notes,
        "wall_seconds": wall,
    }


def bench_fig10a_point(query: str = SMOKE_QUERY,
                       scale_name: str = SMOKE_SCALE) -> dict:
    preset = scale(scale_name)
    out: dict = {"query": query, "scale": scale_name, "rows": preset.rows}
    for backend in ("interpreter", "batched"):
        data = olap.generate(query, preset.rows)
        plat = make_platform(backend=backend)
        start = time.perf_counter()
        run = olap.run_ndp_evaluate(plat, data)
        wall = time.perf_counter() - start
        out[backend] = {
            "wall_seconds": wall,
            "runtime_ns": run.runtime_ns,
            "correct": run.correct,
            "dram_bytes": run.dram_bytes,
            "batched_launches": plat.stats.get("exec.batched_launches"),
            "batched_fallbacks": plat.stats.get("exec.batched_fallbacks"),
        }
    out["batched_wall_speedup"] = (
        out["interpreter"]["wall_seconds"] / out["batched"]["wall_seconds"]
    )
    out["batched_runtime_ratio"] = (
        out["batched"]["runtime_ns"] / out["interpreter"]["runtime_ns"]
    )
    return out


def main(out_path: str = "BENCH_smoke.json") -> dict:
    payload = {
        "python": platform_mod.python_version(),
        "fig5": bench_fig5(),
        "fig10a_point": bench_fig10a_point(),
    }
    point = payload["fig10a_point"]
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path}")
    print(f"  fig10a {point['query']}@{point['scale']}: "
          f"interpreter {point['interpreter']['wall_seconds']:.2f}s, "
          f"batched {point['batched']['wall_seconds']:.2f}s "
          f"({point['batched_wall_speedup']:.1f}x wall, "
          f"sim-time ratio {point['batched_runtime_ratio']:.2f})")
    if not (point["interpreter"]["correct"] and point["batched"]["correct"]):
        raise SystemExit("smoke benchmark produced incorrect results")
    return payload


if __name__ == "__main__":
    main(*sys.argv[1:2])
