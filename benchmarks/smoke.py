"""Smoke benchmark: fast perf-trajectory tracking for CI.

Runs the Fig 5 offload-timeline model, one Fig 10a OLAP point (TPC-H
Q6, "small" scale) on *both* execution backends, one Fig 6-class HISTO
point (vector atomics + init/final phases + scratchpad — a guaranteed
interpreter fallback before the SIMT engine, now its bulk-lane
showcase), one Fig 10b-class KVStore point (fine-grained one-µthread
divergent chain walks served through the serving engine: scatter
batching + the point engine's trie replay vs the unbatched
interpreter, gated >5x and byte-identical), one
cluster point (2-device interleaved vecadd vs 1 device), one
repeated-launch traffic point (100 open-loop vecadd requests through the
cluster — the trace cache's home turf), and one serving point (two
tenants through the SLO-aware serving engine, dynamic batching vs
unbatched FIFO), then writes ``BENCH_smoke.json`` with simulated
results, wall-clock times, trace-cache hit/miss counters and the
``exec.fallback_reason.<class>`` attribution, plus
``BENCH_serving_tenants.json`` with the per-tenant latency summary CI
uploads as an artifact.  CI runs this on every push so the
interpreter/batched performance gap, the scale-out speedup, the
batching gains, the SIMT coverage (the HISTO and KVStore points gate on
``batched_fallbacks == 0``), and any regression in them are recorded
from PR to PR; ``benchmarks/check_budget.py`` turns wall-clock
regressions and fallback reappearances into CI failures.

Usage::

    PYTHONPATH=src python benchmarks/smoke.py [output.json]
"""

from __future__ import annotations

import json
import os
import platform as platform_mod
import sys
import time

import numpy as np

from repro import obs
from repro.cluster import make_cluster_platform
from repro.obs.incidents import grade_against_plan
from repro.obs.monitor import DEFAULT_MONITOR_INTERVAL_NS
from repro.cluster.driver import StreamSpec, TrafficDriver
from repro.experiments.fig05 import run_fig5
from repro.experiments.partitioning import (
    PARTITION_SPEC,
    run_partitioning,
    run_partitioning_containment,
)
from repro.host.api import pack_args
from repro.kernels.vecadd import VECADD
from repro.faults import FaultEvent, FaultPlan
from repro.serve import (
    ArrivalSpec,
    BatchPolicy,
    RetryPolicy,
    ServingEngine,
    TenantSpec,
)
from repro.workloads import histogram, olap
from repro.workloads.base import make_platform, scale

SMOKE_QUERY = "q6"
SMOKE_SCALE = "small"

#: Fig 6-class smoke point: HISTO4096 input size.  Big enough that the
#: interpreter pays seconds while the SIMT engine stays ~100 ms, small
#: enough for every CI run.
FIG06_SMOKE_ELEMENTS = 1 << 16
FIG06_SMOKE_BINS = 4096

#: Fig 10b-class smoke point: fine-grained KVStore GETs through the
#: serving engine.  The load knobs are chosen so real scatter batches
#: form (arrivals outpace single-launch service): at 4e7 rps with two
#: launches in flight, ~14 requests fuse per launch on average.
KVSTORE_SMOKE_ITEMS = 512
KVSTORE_SMOKE_REQUESTS = 300
KVSTORE_SMOKE_RATE_RPS = 4e7
KVSTORE_SMOKE_MAX_BATCH = 16
KVSTORE_SMOKE_INFLIGHT = 2

#: Cluster smoke point: elements per vecadd array (2 MB — big enough to be
#: bandwidth-bound, small enough for a CI run).
CLUSTER_SMOKE_ELEMENTS = 1 << 18

#: Traffic smoke point: open-loop requests replayed against the cluster.
TRAFFIC_SMOKE_REQUESTS = 100

#: Serving smoke point: two tenants whose per-slice launch shapes (2 x 96)
#: overflow the per-device trace cache (LRU 64) when dispatched one by
#: one — dynamic batching fuses 8 slices per launch, collapsing the shape
#: population so the cache hits again.
SERVING_SMOKE_REQUESTS = 192      # per tenant (2 cycles over the slices)
SERVING_SMOKE_SLICES = 96
SERVING_SMOKE_ELEMENTS = 1 << 10  # per slice


def bench_fig5() -> dict:
    start = time.perf_counter()
    result = run_fig5()
    wall = time.perf_counter() - start
    return {
        "rows": result.rows,
        "notes": result.notes,
        "wall_seconds": wall,
    }


def _exec_profile(plat) -> dict:
    """Engine attribution for one run: launches per tier + fallback reasons."""
    prefix = "exec.fallback_reason."
    return {
        "batched_launches": plat.stats.get("exec.batched_launches"),
        "simt_launches": plat.stats.get("exec.simt_launches"),
        "batched_fallbacks": plat.stats.get("exec.batched_fallbacks"),
        "fallback_reasons": {
            key[len(prefix):]: value
            for key, value in plat.stats.counters(prefix).items()
        },
    }


def bench_fig10a_point(query: str = SMOKE_QUERY,
                       scale_name: str = SMOKE_SCALE) -> dict:
    preset = scale(scale_name)
    out: dict = {"query": query, "scale": scale_name, "rows": preset.rows}
    for backend in ("interpreter", "batched"):
        data = olap.generate(query, preset.rows)
        plat = make_platform(backend=backend)
        start = time.perf_counter()
        run = olap.run_ndp_evaluate(plat, data)
        wall = time.perf_counter() - start
        out[backend] = {
            "wall_seconds": wall,
            "runtime_ns": run.runtime_ns,
            "correct": run.correct,
            "dram_bytes": run.dram_bytes,
            **_exec_profile(plat),
        }
    out["batched_wall_speedup"] = (
        out["interpreter"]["wall_seconds"] / out["batched"]["wall_seconds"]
    )
    out["batched_runtime_ratio"] = (
        out["batched"]["runtime_ns"] / out["interpreter"]["runtime_ns"]
    )
    return out


def bench_fig06_point(elements: int = FIG06_SMOKE_ELEMENTS,
                      nbins: int = FIG06_SMOKE_BINS) -> dict:
    """HISTO on both backends: the previously-fallback atomic point.

    Before the SIMT engine this kernel (vector atomics, scratchpad
    partials, init/final phases) fell back to the interpreter on every
    launch; the point records the wall-clock cliff the masked engine
    removes and gates on the fallback count staying zero.
    """
    out: dict = {"elements": elements, "nbins": nbins}
    data = histogram.generate(elements, nbins)
    for backend in ("interpreter", "batched"):
        plat = make_platform(backend=backend)
        start = time.perf_counter()
        run = histogram.run_ndp(plat, data)
        wall = time.perf_counter() - start
        out[backend] = {
            "wall_seconds": wall,
            "runtime_ns": run.runtime_ns,
            "correct": run.correct,
            **_exec_profile(plat),
        }
    out["simt_wall_speedup"] = (
        out["interpreter"]["wall_seconds"] / out["batched"]["wall_seconds"]
    )
    out["simt_runtime_ratio"] = (
        out["batched"]["runtime_ns"] / out["interpreter"]["runtime_ns"]
    )
    return out


_KVS_CACHE_COUNTERS = (
    "exec.trace_cache_hits",
    "exec.trace_cache_misses",
    "exec.trace_cache_hits_generalized",
    "exec.trace_cache_hits_point",
    "exec.trace_cache_hits_batched",
    "exec.trace_cache_hits_simt",
)


def _run_kvstore_serving(backend: str, max_batch: int, scatter: str,
                         items: int, requests: int) -> tuple:
    """One steady-state KVStore serving run: warm pass, then timed pass.

    The warm pass populates the trace cache with the (value-generalized)
    point-path families; the timed pass measures the serving wall-clock
    a long-running tenant actually sees.  The interpreter baseline runs
    the same two-pass protocol for fairness (warming buys it nothing —
    it has no cache to warm).
    """
    previous = os.environ.get("REPRO_SERVE_SCATTER_BATCH")
    os.environ["REPRO_SERVE_SCATTER_BATCH"] = scatter
    try:
        plat = make_cluster_platform(num_devices=1, backend=backend)

        def make_engine() -> ServingEngine:
            tenants = [TenantSpec(
                "kv", "kvstore",
                arrivals=ArrivalSpec("poisson",
                                     rate_rps=KVSTORE_SMOKE_RATE_RPS,
                                     requests=requests),
                size=items,
            )]
            return ServingEngine(
                plat, tenants, batch=BatchPolicy(max_batch=max_batch),
                inflight_per_device=KVSTORE_SMOKE_INFLIGHT,
            )

        make_engine().run()
        before = {key: plat.stats.get(key) for key in _KVS_CACHE_COUNTERS}
        # two timed passes, best-of: wall-clock noise on a loaded CI
        # machine easily exceeds the gate margin on a single ~30 ms run
        wall = None
        for _ in range(2):
            engine = make_engine()
            start = time.perf_counter()
            report = engine.run()
            elapsed = time.perf_counter() - start
            if wall is None:
                # cache counters are the delta over the first timed pass
                cache = {key.removeprefix("exec."):
                         plat.stats.get(key) - before[key]
                         for key in _KVS_CACHE_COUNTERS}
                wall = elapsed
            else:
                wall = min(wall, elapsed)
        return plat, report, wall, cache, engine.result_snapshots()
    finally:
        if previous is None:
            os.environ.pop("REPRO_SERVE_SCATTER_BATCH", None)
        else:
            os.environ["REPRO_SERVE_SCATTER_BATCH"] = previous


def bench_kvstore_point(items: int = KVSTORE_SMOKE_ITEMS,
                        requests: int = KVSTORE_SMOKE_REQUESTS) -> dict:
    """Fig 10b-class KVStore GETs through the serving engine, both tiers.

    Every request is a one-µthread divergent chain walk — the launch
    class where per-launch engine setup used to dominate (the
    small-launch cliff).  The batched tier serves it through scatter
    batching + the point engine's trie replay; the interpreter tier is
    the unbatched per-request baseline.  Counters are deltas over the
    timed (steady-state) pass only.
    """
    out: dict = {"items": items, "requests": requests,
                 "rate_rps": KVSTORE_SMOKE_RATE_RPS,
                 "max_batch": KVSTORE_SMOKE_MAX_BATCH,
                 "inflight_per_device": KVSTORE_SMOKE_INFLIGHT}
    snapshots = {}
    for label, backend, max_batch, scatter in (
            ("interpreter", "interpreter", 1, "0"),
            ("batched", "batched", KVSTORE_SMOKE_MAX_BATCH, "1")):
        plat, report, wall, cache, snaps = _run_kvstore_serving(
            backend, max_batch, scatter, items, requests)
        snapshots[label] = snaps
        out[label] = {
            "wall_seconds": wall,
            "p95_ns": report.p95_ns,
            "served": report.served,
            "correct": report.correct,
            "launches": report.launches,
            "mean_batch": report.mean_batch,
            **cache,
            **_exec_profile(plat),
        }
    out["results_identical"] = (
        snapshots["interpreter"] == snapshots["batched"])
    out["serving_speedup"] = (
        out["interpreter"]["wall_seconds"] / out["batched"]["wall_seconds"])
    out["p95_ratio"] = (
        out["batched"]["p95_ns"] / out["interpreter"]["p95_ns"]
    )
    return out


def bench_cluster_point(elements: int = CLUSTER_SMOKE_ELEMENTS) -> dict:
    """2-device interleaved vecadd through ClusterRuntime vs 1 device."""
    a = (np.arange(elements) * 3).astype(np.int64)
    b = a[::-1].copy()
    out: dict = {"elements": elements, "placement": "interleaved",
                 "scheduler": "locality"}
    for label, devices in (("x1", 1), ("x2", 2)):
        plat = make_cluster_platform(num_devices=devices,
                                     placement="interleaved",
                                     backend="batched")
        runtime = plat.runtime
        addr_a = runtime.alloc_array(a)
        addr_b = runtime.alloc_array(b)
        addr_c = runtime.alloc(a.nbytes)
        start = time.perf_counter()
        instance = runtime.run_kernel(
            VECADD, addr_a, addr_a + a.nbytes, args=pack_args(addr_b, addr_c)
        )
        wall = time.perf_counter() - start
        correct = bool(np.array_equal(
            runtime.read_array(addr_c, np.int64, elements), a + b
        ))
        out[label] = {
            "devices": devices,
            "runtime_ns": instance.runtime_ns,
            "wall_seconds": wall,
            "correct": correct,
            "sub_launches": plat.stats.get("cluster.sub_launches"),
            "switch_p2p_bytes": plat.stats.get("switch.p2p_bytes"),
            "trace_cache_hits": plat.stats.get("exec.trace_cache_hits"),
            "trace_cache_misses": plat.stats.get("exec.trace_cache_misses"),
        }
    out["cluster_speedup"] = out["x1"]["runtime_ns"] / out["x2"]["runtime_ns"]
    return out


def bench_traffic_point(requests: int = TRAFFIC_SMOKE_REQUESTS) -> dict:
    """Repeated-launch point: 100 open-loop vecadd requests, 2 devices.

    Requests cycle through 8 working-set slices, so after the first pass
    every launch shape is already traced — the wall-clock of this point
    tracks the trace cache's replay path.
    """
    plat = make_cluster_platform(num_devices=2, placement="interleaved",
                                 backend="batched")
    driver = TrafficDriver(plat, [
        StreamSpec("smoke", "vecadd", rate_rps=2e5, requests=requests),
    ])
    start = time.perf_counter()
    report = driver.run()
    wall = time.perf_counter() - start
    return {
        "requests": requests,
        "wall_seconds": wall,
        "served": report.served,
        "correct": report.correct,
        "p50_ns": report.p50_ns,
        "p95_ns": report.p95_ns,
        "p99_ns": report.p99_ns,
        "throughput_rps": report.throughput_rps,
        "trace_cache_hits": plat.stats.get("exec.trace_cache_hits"),
        "trace_cache_misses": plat.stats.get("exec.trace_cache_misses"),
    }


def _run_serving(scheduler: str, max_batch: int) -> tuple:
    platform = make_cluster_platform(num_devices=2, placement="interleaved",
                                     backend="batched")
    tenants = [
        TenantSpec(name, "vecadd",
                   arrivals=ArrivalSpec("poisson", rate_rps=1e7,
                                        requests=SERVING_SMOKE_REQUESTS),
                   size=SERVING_SMOKE_ELEMENTS,
                   slices=SERVING_SMOKE_SLICES)
        for name in ("web", "analytics")
    ]
    engine = ServingEngine(
        platform, tenants, scheduler=scheduler,
        batch=BatchPolicy(max_batch=max_batch, max_wait_ns=2_000.0),
        # windows finer than the ~30 µs run, so the peak window rate
        # measures this mode instead of averaging the whole run
        stats_window_ns=5_000.0,
    )
    start = time.perf_counter()
    report = engine.run()
    wall = time.perf_counter() - start
    return engine, report, wall, engine.result_snapshots()


def bench_serving_point() -> dict:
    """Dynamic batching vs unbatched FIFO on the same two-tenant load.

    The batched run must beat the unbatched baseline on throughput *and*
    trace-cache hit rate while producing byte-identical tenant results —
    the acceptance gates below enforce all three.
    """
    out: dict = {
        "requests_per_tenant": SERVING_SMOKE_REQUESTS,
        "slices": SERVING_SMOKE_SLICES,
        "elements": SERVING_SMOKE_ELEMENTS,
    }
    snapshots = {}
    for label, scheduler, max_batch in (("unbatched", "fifo", 1),
                                        ("batched", "wfq", 8)):
        _engine, report, wall, snaps = _run_serving(scheduler, max_batch)
        snapshots[label] = snaps
        out[label] = {
            "scheduler": scheduler,
            "max_batch": max_batch,
            "wall_seconds": wall,
            "served": report.served,
            "correct": report.correct,
            "launches": report.launches,
            "mean_batch": report.mean_batch,
            "p50_ns": report.p50_ns,
            "p99_ns": report.p99_ns,
            "throughput_rps": report.throughput_rps,
            "peak_window_rps": report.timeline.peak_rate_suffix_per_s(
                ".served"
            ),
            "trace_cache_hits": report.trace_cache_hits,
            "trace_cache_misses": report.trace_cache_misses,
            "trace_cache_hit_rate": report.trace_cache_hit_rate,
            "tenants": {
                t.name: {"served": t.served, "p50_ns": t.p50_ns,
                         "p95_ns": t.p95_ns, "p99_ns": t.p99_ns,
                         "goodput_rps": t.goodput_rps,
                         "mean_batch": t.mean_batch}
                for t in report.tenants
            },
        }
    out["results_identical"] = snapshots["unbatched"] == snapshots["batched"]
    out["throughput_gain"] = (out["batched"]["throughput_rps"]
                              / out["unbatched"]["throughput_rps"])
    out["hit_rate_gain"] = (out["batched"]["trace_cache_hit_rate"]
                            - out["unbatched"]["trace_cache_hit_rate"])
    return out


RESILIENCE_SMOKE_REQUESTS = 16


def _run_resilience(retries: int, plan, **engine_kwargs) -> tuple:
    platform = make_cluster_platform(num_devices=4, backend="batched")
    if plan is not None:
        platform.runtime.arm_faults(plan)
    spec = TenantSpec(
        "scan", "olap",
        arrivals=ArrivalSpec("poisson", rate_rps=2e6,
                             requests=RESILIENCE_SMOKE_REQUESTS),
        qos_class="interactive", slo_ns=5_000_000.0, size=1 << 17,
        slices=4, placement="replicated",
        retry=RetryPolicy(max_retries=retries, backoff_ns=500.0,
                          jitter_ns=200.0),
    )
    engine = ServingEngine(platform, [spec], **engine_kwargs)
    start = time.perf_counter()
    report = engine.run()
    wall = time.perf_counter() - start
    return platform, engine, report, wall


def bench_resilience_point() -> dict:
    """Kill 1 of 4 devices mid-traffic; recovery must hold the SLO floor.

    Three runs on the same seed: no-retry under the kill (the chaos
    baseline), deadline-aware retries under the kill (must recover every
    stranded request), and a zero-fault plan (must be byte-identical to
    running with no fault injector armed at all).
    """
    kill = FaultPlan(events=(
        FaultEvent("device_fail", at_ns=3_000.0, device=1),
    ))
    out: dict = {"requests": RESILIENCE_SMOKE_REQUESTS}
    wall_total = 0.0
    for label, retries, plan in (("no_retry", 0, kill),
                                 ("retry", 3, kill)):
        platform, _, report, wall = _run_resilience(retries, plan)
        wall_total += wall
        tenant = report.tenant("scan")
        out[label] = {
            "wall_seconds": wall,
            "offered": tenant.offered,
            "served": tenant.served,
            "failed": tenant.failed,
            "retried": tenant.retried,
            "slo_attainment": tenant.slo_attainment,
            "accounting_ok": tenant.accounting_ok,
            "correct": tenant.correct,
            "device_kills": platform.stats.get("fault.device_kills"),
            "lost_completions": platform.stats.get(
                "fault.lost_completions"),
            "failovers": platform.stats.get("recovery.failovers"),
        }
    identity = {}
    for label, plan in (("zero_fault", FaultPlan.none()),
                        ("disabled", None)):
        platform, engine, report, wall = _run_resilience(0, plan)
        wall_total += wall
        identity[label] = (engine.result_snapshots(),
                           report.aggregate.samples, platform.sim.now)
    out["wall_seconds"] = wall_total
    out["zero_fault_identical"] = (identity["zero_fault"]
                                   == identity["disabled"])
    return out


def _serving_signature(report) -> dict:
    """Everything sim-determined about a serving run: per-tenant latency
    and completion-time streams plus the aggregate span.  Two runs that
    differ anywhere in event ordering or timing differ here."""
    return {
        "span_ns": report.span_ns,
        "served": report.served,
        "latencies": [list(t.latencies.samples) for t in report.tenants],
        "completions": [list(t.completion_times) for t in report.tenants],
    }


def bench_obs_point() -> dict:
    """Tracing must be free when off and near-complete when on.

    Runs the serving smoke workload twice — ``REPRO_TRACE=0`` and ``=1``
    — and gates that (a) results and sim timings are byte-identical
    (tracing is pure observation), and (b) exec-span self time covers
    >=90% of the traced launches' ``runtime_ns``.  The traced pass also
    writes ``serving.trace.json`` / ``serving.manifest.json``, the
    artifacts CI uploads.
    """
    prior = obs.enabled()
    try:
        obs.set_enabled(False)
        _e0, report_off, off_wall, snaps_off = _run_serving("wfq", 8)
        sig_off = _serving_signature(report_off)

        obs.set_enabled(True)
        engine, report_on, on_wall, snaps_on = _run_serving("wfq", 8)
        sig_on = _serving_signature(report_on)
        plat = engine.platform
        tracer = obs.tracer_of(plat.sim)
        spans = tracer.finalize()
        exec_names = {"exec.interpreter", "exec.batched",
                      "exec.simt", "exec.point"}
        span_ns: dict[tuple[int, int], float] = {}
        for span in spans:
            if span.name in exec_names and span.instance_key is not None:
                key = span.instance_key
                span_ns[key] = span_ns.get(key, 0.0) + span.duration_ns
        covered = total_runtime = 0.0
        traced = untraced = 0
        for device in plat.devices:
            pid = device.trace_pid
            for iid, inst in device.controller.instances.items():
                if inst.start_ns is None or inst.complete_ns is None:
                    continue
                exec_ns = span_ns.get((pid, iid))
                if exec_ns is None:
                    untraced += 1
                    continue
                traced += 1
                covered += min(exec_ns, inst.runtime_ns)
                total_runtime += inst.runtime_ns
        coverage = covered / total_runtime if total_runtime else 0.0
        obs.write_trace(tracer, "serving.trace.json",
                        counters=engine._util.counter_samples())
        obs.write_manifest(
            "serving.manifest.json", tracer=tracer, stats=plat.stats,
            config=plat.system, seed=plat.runtime.cluster_config.seed,
            partitions=plat.runtime.partitions,
            extra={
                "experiment": "smoke_serving_traced",
                "served": report_on.served,
                "span_ns": report_on.span_ns,
                "utilization": engine._util.summary(),
            },
        )
    finally:
        obs.set_enabled(prior)
    return {
        "off_wall_seconds": off_wall,
        "on_wall_seconds": on_wall,
        "overhead_ratio": on_wall / off_wall if off_wall else 0.0,
        "span_coverage": coverage,
        "traced_launches": traced,
        "untraced_launches": untraced,
        "spans": len(spans),
        "results_identical": (snaps_off == snaps_on and sig_off == sig_on),
    }


def bench_monitoring_point() -> dict:
    """Always-on monitoring must observe without perturbing.

    Re-runs the resilience kill point twice on the same seed —
    monitoring off, then on with an incident directory — and gates that
    (a) results and latency streams are byte-identical, (b) every
    injected fault is alerted (recall 1.0), (c) the alert lands within
    one monitor beat of heartbeat detection, and (d) at least one
    coherent incident bundle is written.  Bundles land in
    ``incidents/`` for the CI artifact upload.
    """
    kill = FaultPlan(events=(
        FaultEvent("device_fail", at_ns=3_000.0, device=1),
    ))
    os.makedirs("incidents", exist_ok=True)
    _, engine_off, report_off, off_wall = _run_resilience(
        3, kill, monitoring=False)
    platform, engine_on, report_on, on_wall = _run_resilience(
        3, kill, monitoring=True, incident_dir="incidents")
    grade = grade_against_plan(platform.runtime.faults,
                               engine_on.monitor.alerts)
    bundles = engine_on.reporter.bundles
    timeline_coherent = False
    for bundle in bundles:
        t = {row["kind"]: row["t_ns"] for row in bundle["timeline"]}
        if ("fault.kill" in t and "fault.detect" in t
                and t["fault.kill"] <= t["fault.detect"]):
            timeline_coherent = True
    return {
        "off_wall_seconds": off_wall,
        "on_wall_seconds": on_wall,
        "overhead_ratio": on_wall / off_wall if off_wall else 0.0,
        "results_identical": (
            engine_off.result_snapshots() == engine_on.result_snapshots()
            and _serving_signature(report_off)
            == _serving_signature(report_on)),
        "alerts": grade["alerts"],
        "recall": grade["recall"],
        "precision": grade["precision"],
        "mean_mttd_ns": grade["mean_mttd_ns"],
        "max_mtta_ns": grade["max_mtta_ns"],
        "incidents": len(bundles),
        "incident_files": len(engine_on.reporter.paths),
        "timeline_coherent": timeline_coherent,
    }


def bench_partition_point() -> dict:
    """Hardware partitioning: noisy-neighbour isolation + blast radius.

    Two sweeps on the same seeds: shared vs partitioned serving under an
    adversarial batch tenant (the partitioned interactive p99 must stay
    within 10% of its solo run while the shared one degrades), then a
    partition-scoped kill of the adversary's partition (the interactive
    tenant must come through byte-identical, every fault alerted, and
    the blast radius confined to the killed partition).
    """
    start = time.perf_counter()
    isolation = run_partitioning()
    isolation_wall = time.perf_counter() - start
    start = time.perf_counter()
    containment = run_partitioning_containment()
    containment_wall = time.perf_counter() - start
    modes = {row["mode"]: row for row in isolation.rows}
    chaos = containment.rows[0]
    return {
        "spec": PARTITION_SPEC,
        "wall_seconds": isolation_wall + containment_wall,
        "isolation_wall_seconds": isolation_wall,
        "containment_wall_seconds": containment_wall,
        "shared": modes["shared"],
        "partitioned": modes["partitioned"],
        "containment": chaos,
        "shared_penalty": modes["shared"]["rt_p99_vs_solo"],
        "partitioned_penalty": modes["partitioned"]["rt_p99_vs_solo"],
    }


def main(out_path: str = "BENCH_smoke.json") -> dict:
    payload = {
        "python": platform_mod.python_version(),
        "fig5": bench_fig5(),
        "fig10a_point": bench_fig10a_point(),
        "fig06_point": bench_fig06_point(),
        "kvstore_point": bench_kvstore_point(),
        "cluster_point": bench_cluster_point(),
        "traffic_point": bench_traffic_point(),
        "serving_point": bench_serving_point(),
        "resilience_point": bench_resilience_point(),
        "tracing_point": bench_obs_point(),
        "monitoring_point": bench_monitoring_point(),
        "partition_point": bench_partition_point(),
    }
    point = payload["fig10a_point"]
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    fig06 = payload["fig06_point"]
    kvs = payload["kvstore_point"]
    cluster = payload["cluster_point"]
    traffic = payload["traffic_point"]
    serving = payload["serving_point"]
    # per-tenant latency summary, uploaded as its own CI artifact
    tenant_summary = {
        mode: payload["serving_point"][mode]["tenants"]
        for mode in ("unbatched", "batched")
    }
    with open("BENCH_serving_tenants.json", "w") as fh:
        json.dump(tenant_summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path} and BENCH_serving_tenants.json")
    print(f"  fig10a {point['query']}@{point['scale']}: "
          f"interpreter {point['interpreter']['wall_seconds']:.2f}s, "
          f"batched {point['batched']['wall_seconds']:.2f}s "
          f"({point['batched_wall_speedup']:.1f}x wall, "
          f"sim-time ratio {point['batched_runtime_ratio']:.2f})")
    print(f"  fig06 histo{fig06['nbins']} ({fig06['elements']} elems): "
          f"interpreter {fig06['interpreter']['wall_seconds']:.2f}s, "
          f"SIMT {fig06['batched']['wall_seconds']:.2f}s "
          f"({fig06['simt_wall_speedup']:.1f}x wall, sim-time ratio "
          f"{fig06['simt_runtime_ratio']:.2f}, "
          f"{fig06['batched']['batched_fallbacks']:.0f} fallbacks)")
    print(f"  kvstore serving {kvs['requests']} reqs: "
          f"interpreter {kvs['interpreter']['wall_seconds']*1e3:.0f}ms, "
          f"scatter {kvs['batched']['wall_seconds']*1e3:.0f}ms "
          f"({kvs['serving_speedup']:.1f}x wall, p95 ratio "
          f"{kvs['p95_ratio']:.2f}, mean batch "
          f"{kvs['batched']['mean_batch']:.1f}, cache "
          f"{kvs['batched']['trace_cache_hits']:.0f} hits / "
          f"{kvs['batched']['trace_cache_hits_generalized']:.0f} gen / "
          f"{kvs['batched']['trace_cache_misses']:.0f} misses, "
          f"identical: {kvs['results_identical']})")
    print(f"  cluster vecadd {cluster['elements']} elems: "
          f"2-device speedup {cluster['cluster_speedup']:.2f}x "
          f"({cluster['x2']['sub_launches']:.0f} sub-launches)")
    print(f"  traffic {traffic['requests']} requests: "
          f"{traffic['wall_seconds']:.2f}s wall, "
          f"p95 {traffic['p95_ns']:.0f} ns, trace cache "
          f"{traffic['trace_cache_hits']:.0f} hits / "
          f"{traffic['trace_cache_misses']:.0f} misses")
    print(f"  serving 2x{serving['requests_per_tenant']} requests: "
          f"batching {serving['throughput_gain']:.2f}x throughput, "
          f"cache hit rate "
          f"{serving['unbatched']['trace_cache_hit_rate']:.2f} -> "
          f"{serving['batched']['trace_cache_hit_rate']:.2f}, "
          f"results identical: {serving['results_identical']}")
    resilience = payload["resilience_point"]
    print(f"  resilience {resilience['requests']} requests, 1-of-4 kill: "
          f"no-retry slo {resilience['no_retry']['slo_attainment']:.2f} "
          f"({resilience['no_retry']['failed']} failed) -> retry slo "
          f"{resilience['retry']['slo_attainment']:.2f} "
          f"({resilience['retry']['retried']} retried), zero-fault "
          f"identical: {resilience['zero_fault_identical']}")
    tracing = payload["tracing_point"]
    print(f"  tracing: off {tracing['off_wall_seconds']:.2f}s, "
          f"on {tracing['on_wall_seconds']:.2f}s "
          f"({tracing['overhead_ratio']:.2f}x), span coverage "
          f"{tracing['span_coverage']:.1%} over "
          f"{tracing['traced_launches']} launches / "
          f"{tracing['spans']} spans, "
          f"identical: {tracing['results_identical']}")
    monitoring = payload["monitoring_point"]
    print(f"  monitoring: off {monitoring['off_wall_seconds']:.2f}s, "
          f"on {monitoring['on_wall_seconds']:.2f}s "
          f"({monitoring['overhead_ratio']:.2f}x), recall "
          f"{monitoring['recall']:.2f} / precision "
          f"{monitoring['precision']:.2f}, MTTD "
          f"{monitoring['mean_mttd_ns']:.0f} ns, "
          f"{monitoring['incidents']} incidents, "
          f"identical: {monitoring['results_identical']}")
    partition = payload["partition_point"]
    print(f"  partitioning {partition['spec']!r}: noisy-neighbour p99 "
          f"penalty shared {partition['shared_penalty']:.2f}x vs "
          f"partitioned {partition['partitioned_penalty']:.2f}x; "
          f"partition kill contained: "
          f"{partition['containment']['rt_bytes_identical']} "
          f"(blast {partition['containment']['blast_radius']}, "
          f"per-partition kernels "
          f"{partition['containment']['partition_kernels']})")
    if not (point["interpreter"]["correct"] and point["batched"]["correct"]):
        raise SystemExit("smoke benchmark produced incorrect results")
    if not (fig06["interpreter"]["correct"] and fig06["batched"]["correct"]):
        raise SystemExit("fig06 smoke point produced incorrect results")
    if fig06["batched"]["batched_fallbacks"] != 0:
        raise SystemExit(
            f"fig06 smoke point fell back to the interpreter "
            f"({fig06['batched']['fallback_reasons']})"
        )
    if fig06["simt_wall_speedup"] < 5.0:
        raise SystemExit(
            f"SIMT engine lost its wall-clock edge on the atomic point "
            f"({fig06['simt_wall_speedup']:.1f}x, floor 5x)"
        )
    if not (kvs["interpreter"]["correct"] and kvs["batched"]["correct"]):
        raise SystemExit("kvstore smoke point produced incorrect results")
    if not kvs["results_identical"]:
        raise SystemExit(
            "scatter-batched kvstore serving changed per-request results"
        )
    if kvs["batched"]["batched_fallbacks"] != 0:
        raise SystemExit(
            f"kvstore smoke point fell back to the interpreter "
            f"({kvs['batched']['fallback_reasons']})"
        )
    if kvs["serving_speedup"] < 5.0:
        raise SystemExit(
            f"kvstore serving lost its wall-clock edge over the "
            f"interpreter ({kvs['serving_speedup']:.1f}x, floor 5x)"
        )
    if kvs["p95_ratio"] > 1.18:
        raise SystemExit(
            f"kvstore serving p95 drifted from the interpreter's "
            f"({kvs['p95_ratio']:.2f}, ceiling 1.18)"
        )
    if kvs["batched"]["trace_cache_hits"] <= 0:
        raise SystemExit(
            "kvstore serving stopped hitting the point trace cache"
        )
    if not (cluster["x1"]["correct"] and cluster["x2"]["correct"]):
        raise SystemExit("cluster smoke point produced incorrect results")
    if not traffic["correct"]:
        raise SystemExit("traffic smoke point produced incorrect results")
    if cluster["cluster_speedup"] < 1.2:
        raise SystemExit(
            f"cluster smoke point lost its scale-out speedup "
            f"({cluster['cluster_speedup']:.2f}x)"
        )
    if traffic["trace_cache_hits"] <= traffic["trace_cache_misses"]:
        raise SystemExit(
            "traffic smoke point stopped hitting the trace cache "
            f"({traffic['trace_cache_hits']:.0f} hits / "
            f"{traffic['trace_cache_misses']:.0f} misses)"
        )
    if not (serving["unbatched"]["correct"] and serving["batched"]["correct"]):
        raise SystemExit("serving smoke point produced incorrect results")
    if not serving["results_identical"]:
        raise SystemExit(
            "dynamic batching changed per-request results in the serving "
            "smoke point"
        )
    if serving["throughput_gain"] < 1.1:
        raise SystemExit(
            f"dynamic batching lost its throughput edge "
            f"({serving['throughput_gain']:.2f}x)"
        )
    if serving["hit_rate_gain"] < 0.2:
        raise SystemExit(
            f"dynamic batching lost its trace-cache hit-rate edge "
            f"(+{serving['hit_rate_gain']:.2f})"
        )
    if not (resilience["no_retry"]["correct"]
            and resilience["retry"]["correct"]):
        raise SystemExit("resilience smoke point produced incorrect results")
    if not (resilience["no_retry"]["accounting_ok"]
            and resilience["retry"]["accounting_ok"]):
        raise SystemExit(
            "resilience smoke point broke the serving accounting identity "
            "(offered != served + shed + expired + failed)"
        )
    if resilience["retry"]["slo_attainment"] < 0.9:
        raise SystemExit(
            f"retries stopped holding the SLO floor under a device kill "
            f"({resilience['retry']['slo_attainment']:.2f}, floor 0.9)"
        )
    if (resilience["retry"]["slo_attainment"]
            <= resilience["no_retry"]["slo_attainment"]):
        raise SystemExit(
            "deadline-aware retries lost their edge over the no-retry "
            "baseline under a mid-traffic device kill"
        )
    if not resilience["zero_fault_identical"]:
        raise SystemExit(
            "arming a zero-fault plan changed serving results or timing "
            "(fault hooks are supposed to be free when idle)"
        )
    if not tracing["results_identical"]:
        raise SystemExit(
            "enabling REPRO_TRACE changed serving results or sim timings"
        )
    if tracing["span_coverage"] < 0.9:
        raise SystemExit(
            f"exec spans cover only {tracing['span_coverage']:.1%} of "
            f"traced launch runtime (floor 90%)"
        )
    if not monitoring["results_identical"]:
        raise SystemExit(
            "enabling the SLO monitor changed serving results or timings "
            "(monitoring is supposed to observe, never steer)"
        )
    if monitoring["recall"] < 1.0:
        raise SystemExit(
            f"monitoring missed an injected fault (recall "
            f"{monitoring['recall']:.2f}, floor 1.0)"
        )
    if monitoring["max_mtta_ns"] > DEFAULT_MONITOR_INTERVAL_NS:
        raise SystemExit(
            f"alert lagged detection by {monitoring['max_mtta_ns']:.0f} ns "
            f"(ceiling: one monitor beat, "
            f"{DEFAULT_MONITOR_INTERVAL_NS:.0f} ns)"
        )
    if monitoring["incidents"] < 1 or not monitoring["timeline_coherent"]:
        raise SystemExit(
            "device kill produced no coherent incident bundle "
            "(kill <= detect ordering missing from every timeline)"
        )
    if not (partition["shared"]["correct"]
            and partition["partitioned"]["correct"]
            and partition["containment"]["correct"]):
        raise SystemExit("partition smoke point produced incorrect results")
    if partition["partitioned_penalty"] > 1.10:
        raise SystemExit(
            f"partitioned interactive p99 drifted "
            f"{partition['partitioned_penalty']:.2f}x from its solo run "
            f"under an adversarial tenant (ceiling 1.10x — partitions "
            f"stopped isolating)"
        )
    if partition["shared_penalty"] <= partition["partitioned_penalty"]:
        raise SystemExit(
            "the shared cluster no longer shows a noisy-neighbour "
            "penalty the partitioned one avoids — the smoke point "
            "stopped exercising isolation"
        )
    if not partition["containment"]["rt_bytes_identical"]:
        raise SystemExit(
            "a partition-scoped kill perturbed another partition's "
            "result bytes (containment broken)"
        )
    if not (partition["containment"]["rt_accounted"]
            and partition["containment"]["noisy_accounted"]):
        raise SystemExit(
            "partition kill broke the serving accounting identity"
        )
    if partition["containment"]["alert_recall"] < 1.0:
        raise SystemExit(
            f"monitoring missed the partition kill (recall "
            f"{partition['containment']['alert_recall']:.2f}, floor 1.0)"
        )
    blast_keys = partition["containment"]["blast_radius"]
    if blast_keys == "none" or any(
            not key.split(":")[0].endswith(".batch")
            for key in blast_keys.split(",")):
        raise SystemExit(
            f"partition-kill blast radius escaped the killed partition "
            f"({blast_keys!r}; only dev*.batch may appear)"
        )
    return payload


if __name__ == "__main__":
    main(*sys.argv[1:2])
