"""Smoke benchmark: fast perf-trajectory tracking for CI.

Runs the Fig 5 offload-timeline model, one Fig 10a OLAP point (TPC-H
Q6, "small" scale) on *both* execution backends, one cluster point
(2-device interleaved vecadd vs 1 device), and one repeated-launch
traffic point (100 open-loop vecadd requests through the cluster — the
trace cache's home turf), then writes ``BENCH_smoke.json`` with simulated
results, wall-clock times and trace-cache hit/miss counters.  CI runs
this on every push so the interpreter/batched performance gap, the
scale-out speedup, and any regression in either are recorded from PR to
PR; ``benchmarks/check_budget.py`` turns wall-clock regressions into CI
failures.

Usage::

    PYTHONPATH=src python benchmarks/smoke.py [output.json]
"""

from __future__ import annotations

import json
import platform as platform_mod
import sys
import time

import numpy as np

from repro.cluster import make_cluster_platform
from repro.cluster.driver import StreamSpec, TrafficDriver
from repro.experiments.fig05 import run_fig5
from repro.host.api import pack_args
from repro.kernels.vecadd import VECADD
from repro.workloads import olap
from repro.workloads.base import make_platform, scale

SMOKE_QUERY = "q6"
SMOKE_SCALE = "small"

#: Cluster smoke point: elements per vecadd array (2 MB — big enough to be
#: bandwidth-bound, small enough for a CI run).
CLUSTER_SMOKE_ELEMENTS = 1 << 18

#: Traffic smoke point: open-loop requests replayed against the cluster.
TRAFFIC_SMOKE_REQUESTS = 100


def bench_fig5() -> dict:
    start = time.perf_counter()
    result = run_fig5()
    wall = time.perf_counter() - start
    return {
        "rows": result.rows,
        "notes": result.notes,
        "wall_seconds": wall,
    }


def bench_fig10a_point(query: str = SMOKE_QUERY,
                       scale_name: str = SMOKE_SCALE) -> dict:
    preset = scale(scale_name)
    out: dict = {"query": query, "scale": scale_name, "rows": preset.rows}
    for backend in ("interpreter", "batched"):
        data = olap.generate(query, preset.rows)
        plat = make_platform(backend=backend)
        start = time.perf_counter()
        run = olap.run_ndp_evaluate(plat, data)
        wall = time.perf_counter() - start
        out[backend] = {
            "wall_seconds": wall,
            "runtime_ns": run.runtime_ns,
            "correct": run.correct,
            "dram_bytes": run.dram_bytes,
            "batched_launches": plat.stats.get("exec.batched_launches"),
            "batched_fallbacks": plat.stats.get("exec.batched_fallbacks"),
        }
    out["batched_wall_speedup"] = (
        out["interpreter"]["wall_seconds"] / out["batched"]["wall_seconds"]
    )
    out["batched_runtime_ratio"] = (
        out["batched"]["runtime_ns"] / out["interpreter"]["runtime_ns"]
    )
    return out


def bench_cluster_point(elements: int = CLUSTER_SMOKE_ELEMENTS) -> dict:
    """2-device interleaved vecadd through ClusterRuntime vs 1 device."""
    a = (np.arange(elements) * 3).astype(np.int64)
    b = a[::-1].copy()
    out: dict = {"elements": elements, "placement": "interleaved",
                 "scheduler": "locality"}
    for label, devices in (("x1", 1), ("x2", 2)):
        plat = make_cluster_platform(num_devices=devices,
                                     placement="interleaved",
                                     backend="batched")
        runtime = plat.runtime
        addr_a = runtime.alloc_array(a)
        addr_b = runtime.alloc_array(b)
        addr_c = runtime.alloc(a.nbytes)
        start = time.perf_counter()
        instance = runtime.run_kernel(
            VECADD, addr_a, addr_a + a.nbytes, args=pack_args(addr_b, addr_c)
        )
        wall = time.perf_counter() - start
        correct = bool(np.array_equal(
            runtime.read_array(addr_c, np.int64, elements), a + b
        ))
        out[label] = {
            "devices": devices,
            "runtime_ns": instance.runtime_ns,
            "wall_seconds": wall,
            "correct": correct,
            "sub_launches": plat.stats.get("cluster.sub_launches"),
            "switch_p2p_bytes": plat.stats.get("switch.p2p_bytes"),
            "trace_cache_hits": plat.stats.get("exec.trace_cache_hits"),
            "trace_cache_misses": plat.stats.get("exec.trace_cache_misses"),
        }
    out["cluster_speedup"] = out["x1"]["runtime_ns"] / out["x2"]["runtime_ns"]
    return out


def bench_traffic_point(requests: int = TRAFFIC_SMOKE_REQUESTS) -> dict:
    """Repeated-launch point: 100 open-loop vecadd requests, 2 devices.

    Requests cycle through 8 working-set slices, so after the first pass
    every launch shape is already traced — the wall-clock of this point
    tracks the trace cache's replay path.
    """
    plat = make_cluster_platform(num_devices=2, placement="interleaved",
                                 backend="batched")
    driver = TrafficDriver(plat, [
        StreamSpec("smoke", "vecadd", rate_rps=2e5, requests=requests),
    ])
    start = time.perf_counter()
    report = driver.run()
    wall = time.perf_counter() - start
    return {
        "requests": requests,
        "wall_seconds": wall,
        "served": report.served,
        "correct": report.correct,
        "p50_ns": report.p50_ns,
        "p95_ns": report.p95_ns,
        "p99_ns": report.p99_ns,
        "throughput_rps": report.throughput_rps,
        "trace_cache_hits": plat.stats.get("exec.trace_cache_hits"),
        "trace_cache_misses": plat.stats.get("exec.trace_cache_misses"),
    }


def main(out_path: str = "BENCH_smoke.json") -> dict:
    payload = {
        "python": platform_mod.python_version(),
        "fig5": bench_fig5(),
        "fig10a_point": bench_fig10a_point(),
        "cluster_point": bench_cluster_point(),
        "traffic_point": bench_traffic_point(),
    }
    point = payload["fig10a_point"]
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    cluster = payload["cluster_point"]
    traffic = payload["traffic_point"]
    print(f"wrote {out_path}")
    print(f"  fig10a {point['query']}@{point['scale']}: "
          f"interpreter {point['interpreter']['wall_seconds']:.2f}s, "
          f"batched {point['batched']['wall_seconds']:.2f}s "
          f"({point['batched_wall_speedup']:.1f}x wall, "
          f"sim-time ratio {point['batched_runtime_ratio']:.2f})")
    print(f"  cluster vecadd {cluster['elements']} elems: "
          f"2-device speedup {cluster['cluster_speedup']:.2f}x "
          f"({cluster['x2']['sub_launches']:.0f} sub-launches)")
    print(f"  traffic {traffic['requests']} requests: "
          f"{traffic['wall_seconds']:.2f}s wall, "
          f"p95 {traffic['p95_ns']:.0f} ns, trace cache "
          f"{traffic['trace_cache_hits']:.0f} hits / "
          f"{traffic['trace_cache_misses']:.0f} misses")
    if not (point["interpreter"]["correct"] and point["batched"]["correct"]):
        raise SystemExit("smoke benchmark produced incorrect results")
    if not (cluster["x1"]["correct"] and cluster["x2"]["correct"]):
        raise SystemExit("cluster smoke point produced incorrect results")
    if not traffic["correct"]:
        raise SystemExit("traffic smoke point produced incorrect results")
    if cluster["cluster_speedup"] < 1.2:
        raise SystemExit(
            f"cluster smoke point lost its scale-out speedup "
            f"({cluster['cluster_speedup']:.2f}x)"
        )
    if traffic["trace_cache_hits"] <= traffic["trace_cache_misses"]:
        raise SystemExit(
            "traffic smoke point stopped hitting the trace cache "
            f"({traffic['trace_cache_hits']:.0f} hits / "
            f"{traffic['trace_cache_misses']:.0f} misses)"
        )
    return payload


if __name__ == "__main__":
    main(*sys.argv[1:2])
