"""Fig 5 benchmark: offload timeline comparison.

Paper reference: M2func cuts communication overhead 33-75% and end-to-end
runtime 17-37% vs the CXL.io schemes (x=75 ns, y=500 ns, z=6.4 µs).
"""

from repro.experiments.fig05 import run_fig5


def test_fig5_offload_timelines(once):
    result = once(run_fig5)
    totals = {row["mechanism"]: row["total_ns"] for row in result.rows}
    assert totals["m2func"] < totals["cxl_io_dr"] < totals["cxl_io_rb"]
    # end-to-end reductions (paper: 17-37%)
    dr_reduction = 1.0 - totals["m2func"] / totals["cxl_io_dr"]
    rb_reduction = 1.0 - totals["m2func"] / totals["cxl_io_rb"]
    assert 0.10 < dr_reduction < 0.25
    assert 0.30 < rb_reduction < 0.45
