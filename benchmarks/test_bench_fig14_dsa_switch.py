"""Fig 14 benchmark: domain-specific PEs (14a) and M2NDP-in-switch (14b).

Paper reference: M2NDP lands within 6.5% of the domain-specific designs on
average; the in-switch block scales 6.39-7.38x over 8 passive memories.
"""

from repro.experiments.fig14 import run_fig14a, run_fig14b


def test_fig14a_domain_specific(once):
    result = once(run_fig14a, scale_name="small")
    for row in result.rows:
        # each fixed-function PE lands in the same performance class as
        # general-purpose M2NDP — same order of magnitude, not the 5-10x
        # gulf that separates NDP from passive-memory baselines.  (Paper:
        # within 6.5% on average at Table V scale; our scaled-down DLRM is
        # partially latency-bound, widening its gap.)
        assert 0.5 < row["pe_perf_normalized"] < 2.2, row
    best = min(abs(r["pe_perf_normalized"] - 1.0) for r in result.rows)
    assert best < 0.15   # at least one domain matches closely (OPT GEMV)


def test_fig14b_switch_scaling(once):
    result = once(run_fig14b)
    by_count = {row["memories"]: row["speedup"] for row in result.rows}
    assert by_count[1] == 1.0
    assert by_count[8] > 6.0                  # paper: 6.39-7.38x
    assert by_count[8] < 8.0                  # sub-linear from hop latency
