"""Fig 1 benchmark: roofline (1a) and KVS P95 vs load-to-use latency (1b).

Paper reference: up to 9.9x (avg 6.3x) slowdown from CXL placement;
KVS_A P95 of 1.0 / 2.2 / 7.4 normalized at LtU 75 / 150 / 600 ns.
"""

from repro.experiments.fig01 import run_fig1a, run_fig1b


def test_fig1a_roofline(once):
    result = once(run_fig1a)
    slowdowns = result.column("slowdown")
    assert max(slowdowns) > 8.0          # paper: up to 9.9x
    assert all(s > 1.0 for s in slowdowns)


def test_fig1b_kvs_ltu(once):
    result = once(run_fig1b)
    normalized = {row["memory"]: row["normalized"] for row in result.rows}
    assert normalized["local_LtU_75ns"] == 1.0
    assert normalized["cxl_LtU_150ns"] > 1.3       # paper: 2.2
    assert normalized["cxl_LtU_600ns"] > normalized["cxl_LtU_150ns"]
