"""cProfile harness over smoke-sized runs: measure before cutting.

Perf PRs against the simulation core must start from a profile, not a
hunch — the PR that introduced this file found 97% of the cluster smoke
point inside a per-sector Python loop that a cumulative-time glance at
``run_kernel`` would have hidden.  This harness profiles one of the smoke
benchmark's workloads and prints the top-N functions by *internal* time
(where the cycles actually go) and by cumulative time (how you got
there).

Usage::

    PYTHONPATH=src python benchmarks/profile.py [point] [--top N]
                                                [--sort RANKING] [-o FILE]

where ``point`` is one of:

* ``cluster`` (default) — 2-device interleaved vecadd, one logical launch
* ``traffic`` — 100-request open-loop vecadd stream on a 2-device cluster
* ``fig10a``  — the TPC-H Q6 "small" OLAP point on the batched backend
* ``kvstore`` — 400 fine-grained KVS_B requests on the batched backend:
  every launch is a one-µthread divergent chain walk through the point
  engine (`repro/exec/point.py`) — profile this before touching it
* ``kvstore-batched`` — scatter-batched KVStore serving (warm + timed
  pass, mirroring the ``kvstore_point`` smoke gate); also reachable as
  ``--preset kvstore-batched``
* ``histo``   — one HISTO4096 launch (phases + scratchpad + vector
  atomics), the bulk-lane SIMT path

``--sort`` picks the ranking(s) printed: ``tottime`` (where the cycles
go), ``cumulative`` (how you got there) or ``both`` (default).
``-o FILE`` additionally dumps raw pstats for ``snakeviz``-style viewers.
"""

from __future__ import annotations

import os
import sys

# This file shadows the stdlib ``profile`` module that ``cProfile``
# imports when the script directory leads sys.path (the documented
# ``python benchmarks/profile.py`` invocation).  Drop it before pulling
# in cProfile so the stdlib module resolves.
_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path[:] = [
    p for p in sys.path if os.path.abspath(p if p else os.getcwd()) != _HERE
]

import argparse
import cProfile
import pstats
import time

import numpy as np


def run_cluster() -> None:
    from repro.cluster import make_cluster_platform
    from repro.host.api import pack_args
    from repro.kernels.vecadd import VECADD

    elements = 1 << 18
    a = (np.arange(elements) * 3).astype(np.int64)
    b = a[::-1].copy()
    platform = make_cluster_platform(num_devices=2, placement="interleaved",
                                     backend="batched")
    runtime = platform.runtime
    addr_a = runtime.alloc_array(a)
    addr_b = runtime.alloc_array(b)
    addr_c = runtime.alloc(a.nbytes)
    runtime.run_kernel(VECADD, addr_a, addr_a + a.nbytes,
                       args=pack_args(addr_b, addr_c))


def run_traffic() -> None:
    from repro.cluster import make_cluster_platform
    from repro.cluster.driver import StreamSpec, TrafficDriver

    platform = make_cluster_platform(num_devices=2, placement="interleaved",
                                     backend="batched")
    driver = TrafficDriver(platform, [
        StreamSpec("profile", "vecadd", rate_rps=2e5, requests=100),
    ])
    driver.run()


def run_fig10a() -> None:
    from repro.workloads import olap
    from repro.workloads.base import make_platform, scale

    preset = scale("small")
    data = olap.generate("q6", preset.rows)
    platform = make_platform(backend="batched")
    olap.run_ndp_evaluate(platform, data)


def run_kvstore() -> None:
    from repro.host.offload import make_offload_path
    from repro.workloads import kvstore
    from repro.workloads.base import make_platform

    data = kvstore.kvs_b(1024, 400)
    platform = make_platform(backend="batched")
    kvstore.run_ndp(platform, data, make_offload_path("m2func"))
    fallbacks = platform.stats.get("exec.batched_fallbacks")
    if fallbacks:
        raise SystemExit(
            f"kvstore profile point stopped exercising the SIMT engine "
            f"({fallbacks:.0f} interpreter fallbacks)")


def run_histo() -> None:
    from repro.workloads import histogram
    from repro.workloads.base import make_platform

    data = histogram.generate(1 << 17, 4096)
    platform = make_platform(backend="batched")
    histogram.run_ndp(platform, data)


def run_kvstore_batched() -> None:
    """Scatter-batched KVStore serving: the point engine's trie replay.

    Mirrors the ``kvstore_point`` smoke measurement (warm pass to fill
    the point-path families, then a steady-state pass) — profile this
    before touching ``repro/exec/point.py`` or the scatter serving path.
    """
    from repro.cluster import make_cluster_platform
    from repro.serve import (ArrivalSpec, BatchPolicy, ServingEngine,
                             TenantSpec)

    platform = make_cluster_platform(num_devices=1, backend="batched")

    def make_engine() -> "ServingEngine":
        tenants = [TenantSpec(
            "kv", "kvstore",
            arrivals=ArrivalSpec("poisson", rate_rps=4e7, requests=300),
            size=512,
        )]
        return ServingEngine(platform, tenants,
                             batch=BatchPolicy(max_batch=16),
                             inflight_per_device=2)

    make_engine().run()     # warm the point-path tries
    make_engine().run()     # steady-state pass (all launches replay)


POINTS = {
    "cluster": run_cluster,
    "traffic": run_traffic,
    "fig10a": run_fig10a,
    "kvstore": run_kvstore,
    "kvstore-batched": run_kvstore_batched,
    "histo": run_histo,
}


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("point", nargs="?", default="cluster",
                        choices=sorted(POINTS))
    parser.add_argument("--preset", default=None, choices=sorted(POINTS),
                        help="flag-style alternative to the positional "
                             "point (takes precedence when given)")
    parser.add_argument("--top", type=int, default=20,
                        help="functions to show per ranking (default 20)")
    parser.add_argument("--sort", default="both",
                        choices=("tottime", "cumulative", "both"),
                        help="ranking(s) to print (default: both)")
    parser.add_argument("-o", "--output", default=None,
                        help="also dump raw pstats to this file")
    args = parser.parse_args(argv)

    point = args.preset or args.point
    workload = POINTS[point]
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    workload()
    profiler.disable()
    wall = time.perf_counter() - start

    print(f"profiled smoke point {point!r}: {wall:.3f}s wall\n")
    stats = pstats.Stats(profiler)
    rankings = (("tottime", "cumulative") if args.sort == "both"
                else (args.sort,))
    for ranking in rankings:
        print(f"=== top {args.top} by {ranking} ===")
        stats.sort_stats(ranking).print_stats(args.top)
    if args.output:
        stats.dump_stats(args.output)
        print(f"raw pstats written to {args.output}")


if __name__ == "__main__":
    main(sys.argv[1:])
