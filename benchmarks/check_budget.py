"""Smoke-bench wall-clock budget check for CI.

Compares a freshly produced ``BENCH_smoke.json`` against the committed
one and fails when any tracked wall-clock field regresses by more than
the budget factor (default 2x; override with the
``REPRO_BENCH_BUDGET_FACTOR`` environment variable, e.g. for slower CI
runners).  A small absolute slack (``ABS_SLACK_SECONDS``) is added on
top of the factor so sub-100 ms fields — where scheduler noise and cold
numpy imports dominate — don't flake on shared CI workers or across
machine generations; the committed baseline is measured on a developer
box, not the runner.  Simulated results (``runtime_ns``) are covered by
tests; this gate only protects the *wall-clock* trajectory, so a change
that silently puts a Python loop back on the charge path turns CI red
instead of slowly rotting every sweep.

Two *coverage* gates ride along: the fig06 (HISTO atomics/phases) and
kvstore (fine-grained divergent GETs) smoke points must report
``batched_fallbacks == 0`` — the SIMT engine owns those launch classes,
and a change that silently hands them back to the interpreter is a
~10-60x wall cliff the factor-based budget might only catch later.  A
*speedup floor* gate also rides along: ``kvstore_point.serving_speedup``
(scatter-batched serving vs the unbatched interpreter tier) must stay
above 5x — being a ratio of two walls on the same runner, it needs no
noise slack.  Finally, ``tracing_point.off_wall_seconds`` gets a *tight*
1.05x factor: tracing disabled (``REPRO_TRACE=0``, the default) must
cost nothing, so even a small regression on that field fails CI.

Usage::

    python benchmarks/check_budget.py committed.json fresh.json
"""

from __future__ import annotations

import json
import os
import sys

#: Dotted paths of the wall-clock fields under budget.
TRACKED_FIELDS = (
    "fig10a_point.batched.wall_seconds",
    "fig06_point.batched.wall_seconds",
    "kvstore_point.batched.wall_seconds",
    "cluster_point.x1.wall_seconds",
    "cluster_point.x2.wall_seconds",
    "traffic_point.wall_seconds",
    "serving_point.unbatched.wall_seconds",
    "serving_point.batched.wall_seconds",
    "resilience_point.wall_seconds",
    "monitoring_point.off_wall_seconds",
    "monitoring_point.on_wall_seconds",
    "partition_point.isolation_wall_seconds",
    "partition_point.containment_wall_seconds",
)

#: Dotted paths that must be exactly zero in the fresh run: interpreter
#: fallbacks on launch classes the SIMT engine covers.
ZERO_FALLBACK_FIELDS = (
    "fig06_point.batched.batched_fallbacks",
    "kvstore_point.batched.batched_fallbacks",
)

#: Hard floors on speedup ratios in the fresh run, independent of the
#: committed baseline: the scatter-batched KVStore serving path must
#: stay >5x faster wall-clock than the unbatched interpreter tier — a
#: ratio, so runner speed cancels out and no slack factor applies.
SPEEDUP_FLOOR_FIELDS = {
    "kvstore_point.serving_speedup": 5.0,
}

#: Fields with their own *tight* budget factor instead of the default:
#: disabled tracing must be free, so the tracing-off serving wall only
#: gets 5% over the committed baseline (plus the same flat noise slack
#: every wall field gets) — if the ``obs_tracer.ENABLED`` fast path
#: grows real work, this turns red long before the 2x budget would.
TIGHT_FACTOR_FIELDS = {
    "tracing_point.off_wall_seconds": 1.05,
}

DEFAULT_FACTOR = 2.0

#: Flat allowance added to every budget: absorbs measurement noise on
#: fields that are now only tens of milliseconds.
ABS_SLACK_SECONDS = 0.5


def _dig(payload: dict, dotted: str):
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def check(committed: dict, fresh: dict, factor: float) -> list[str]:
    """Returns a list of human-readable budget violations."""
    failures = []
    for field in TRACKED_FIELDS:
        base = _dig(committed, field)
        now = _dig(fresh, field)
        if base is None or now is None:
            # a point only one side knows about is not a regression
            # (e.g. comparing across a PR that adds a new smoke point)
            continue
        if now > base * factor + ABS_SLACK_SECONDS:
            failures.append(
                f"{field}: {now:.3f}s vs committed {base:.3f}s "
                f"(> {factor:.1f}x + {ABS_SLACK_SECONDS:.1f}s budget)"
            )
    for field in ZERO_FALLBACK_FIELDS:
        now = _dig(fresh, field)
        if now is not None and now != 0:
            reasons = _dig(fresh, field.rsplit(".", 1)[0]
                           + ".fallback_reasons")
            failures.append(
                f"{field}: {now:.0f} interpreter fallbacks on a "
                f"SIMT-covered launch class (reasons: {reasons})"
            )
    for field, floor in SPEEDUP_FLOOR_FIELDS.items():
        now = _dig(fresh, field)
        if now is not None and now < floor:
            failures.append(
                f"{field}: {now:.2f}x below the {floor:.1f}x floor "
                f"(the small-launch serving path regressed)"
            )
    for field, tight in TIGHT_FACTOR_FIELDS.items():
        base = _dig(committed, field)
        now = _dig(fresh, field)
        if base is None or now is None:
            continue
        if now > base * tight + ABS_SLACK_SECONDS:
            failures.append(
                f"{field}: {now:.3f}s vs committed {base:.3f}s "
                f"(> {tight:.2f}x + {ABS_SLACK_SECONDS:.1f}s tracing-off "
                f"budget — the disabled-tracing fast path grew overhead)"
            )
    return failures


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    with open(argv[0]) as fh:
        committed = json.load(fh)
    with open(argv[1]) as fh:
        fresh = json.load(fh)
    factor = float(os.environ.get("REPRO_BENCH_BUDGET_FACTOR",
                                  DEFAULT_FACTOR))
    failures = check(committed, fresh, factor)
    for field in TRACKED_FIELDS:
        base, now = _dig(committed, field), _dig(fresh, field)
        if base is not None and now is not None:
            print(f"  {field}: {now:.3f}s (committed {base:.3f}s, "
                  f"budget {base * factor + ABS_SLACK_SECONDS:.3f}s)")
    for field, tight in TIGHT_FACTOR_FIELDS.items():
        base, now = _dig(committed, field), _dig(fresh, field)
        if base is not None and now is not None:
            print(f"  {field}: {now:.3f}s (committed {base:.3f}s, "
                  f"budget {base * tight + ABS_SLACK_SECONDS:.3f}s)")
    if failures:
        print("wall-clock budget exceeded:")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print("wall-clock budget OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
