"""Fig 6 benchmark: active-context ratio (6a) and HISTO traffic (6b).

Paper reference: the NDP unit sustains a 15.9-50.9% higher active-context
ratio than an SM on PGRANK; M2NDP cuts HISTO global traffic to 0.90x and
scratchpad traffic to 0.44x of GPU-NDP.
"""

from repro.experiments.fig06 import run_fig6a, run_fig6b


def test_fig6a_active_contexts(once):
    result = once(run_fig6a, scale_name="small")
    means = {row["config"]: row["mean_active_ratio"]
             for row in result.rows if "config" in row}
    assert means["ndp_unit"] > 0.0
    # fine-grained µthread slots sustain at least TB-granularity occupancy
    for tb in (32, 64, 128):
        assert means["ndp_unit"] >= means[f"sm_tb{tb}"] * 0.9


def test_fig6b_histo_traffic(once):
    result = once(run_fig6b, scale_name="small")
    m2ndp = next(r for r in result.rows if r["config"] == "m2ndp")
    assert m2ndp["normalized_global"] < 1.0     # paper: 0.90
    assert m2ndp["normalized_spad"] < 1.0       # paper: 0.44
