"""Cluster-subsystem benchmark: the executable Fig 12b counterpart.

Where ``test_bench_fig12_ablation_scaling.py`` checks the *analytic*
multi-device model, this drives the real :mod:`repro.cluster` stack —
N devices behind the switch, sharded allocation, fan-out scheduling, the
open-loop traffic driver — and checks the scaling trend (paper:
6.45-7.84x at 8 devices) plus the placement x scheduler policy matrix.
"""

from repro.experiments.scaling import run_policy_matrix, run_scaling


def test_cluster_scaling_trend(once):
    result = once(run_scaling, scale_name="small", device_counts=(1, 2, 4, 8),
                  requests=8)
    rows = {row["devices"]: row for row in result.rows}
    assert all(row["correct"] for row in result.rows)
    # monotone scaling and a near-linear 8-device point: the paper's Fig
    # 12b band is 6.45-7.84x; aggregate L2 capacity lets the bandwidth-
    # bound streams land at or above it
    speedups = [rows[n]["agg_speedup"] for n in (1, 2, 4, 8)]
    assert speedups == sorted(speedups)
    assert rows[4]["agg_speedup"] >= 3.0
    assert rows[8]["agg_speedup"] >= 5.0
    # open-loop tail latency must fall as devices absorb the backlog
    assert rows[8]["p95_ns"] < rows[1]["p95_ns"]


def test_cluster_policy_matrix(once):
    result = once(run_policy_matrix, num_devices=4, scale_name="tiny")
    assert all(row["correct"] for row in result.rows)
    by_key = {(row["placement"], row["scheduler"]): row
              for row in result.rows}
    # follow-the-shard never touches the switch
    for placement in ("interleaved", "blocked", "replicated"):
        assert by_key[(placement, "locality")]["p2p_bytes"] == 0
    # replicated data is local everywhere: no policy pays P2P
    for scheduler in ("round_robin", "locality", "least_outstanding"):
        assert by_key[("replicated", scheduler)]["p2p_bytes"] == 0
