"""Benchmark harness configuration.

Each benchmark reproduces one paper figure/table: it runs the experiment
once (simulations are deterministic — statistical repetition adds nothing),
prints the regenerated rows next to the paper's reference values, and
reports wall time through pytest-benchmark.

Everything in this directory is marked ``slow`` (see ``pytest.ini``): the
tier-1 default run deselects it.  Run with::

    pytest -m slow benchmarks/ --benchmark-only
"""

import pathlib

import pytest

_BENCH_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(items):
    # This hook sees the whole session's items; only mark ours.
    for item in items:
        if _BENCH_DIR in pathlib.Path(item.fspath).parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture
def once(benchmark, capsys):
    """Run an experiment once under pytest-benchmark and emit its table
    (outside pytest's capture, so it lands in the bench log)."""

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(result.render())
        return result

    return runner
