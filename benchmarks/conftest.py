"""Benchmark harness configuration.

Each benchmark reproduces one paper figure/table: it runs the experiment
once (simulations are deterministic — statistical repetition adds nothing),
prints the regenerated rows next to the paper's reference values, and
reports wall time through pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def once(benchmark, capsys):
    """Run an experiment once under pytest-benchmark and emit its table
    (outside pytest's capture, so it lands in the bench log)."""

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(result.render())
        return result

    return runner
